// Package session implements durable live analysis sessions: trace
// records stream in through appends, evolving core.Report snapshots
// stream out to subscribers, and a per-session write-ahead journal
// makes the whole construction survive a kill -9 — a restarted manager
// replays the journals and recovers each session to a Report deep-equal
// to an uninterrupted run.
//
// The analysis itself reuses the batch pipeline: every snapshot is
// core.AnalyzeContext over the accumulated records, so a session
// snapshot after N appends is provably the same Report batch analysis
// of that prefix produces (per-phase panic isolation, degraded mode and
// the online/columnar paths all inherited for free). Snapshots are
// coalesced — appends mark the session dirty and a single per-session
// goroutine analyzes the newest state, so a burst of appends costs one
// analysis and a slow subscriber can never block the analysis path.
package session

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Sentinel errors; handlers map these onto HTTP statuses.
var (
	// ErrEnded means the session was drained or evicted; appends and new
	// snapshots are over (410 Gone).
	ErrEnded = errors.New("session: session ended")
	// ErrSessionBudget means this session's appended-byte budget is
	// exhausted (429 + Retry-After).
	ErrSessionBudget = errors.New("session: per-session byte budget exhausted")
	// ErrGlobalBudget means the manager-wide appended-byte budget is
	// exhausted (429 + Retry-After).
	ErrGlobalBudget = errors.New("session: global session byte budget exhausted")
	// ErrTooManySessions means the live-session count cap was hit
	// (429 + Retry-After).
	ErrTooManySessions = errors.New("session: too many live sessions")
	// ErrClosed means the manager is draining for shutdown (503).
	ErrClosed = errors.New("session: manager closed")
	// ErrMismatch means an appended chunk's metadata names a different
	// application or rank count than the session (400).
	ErrMismatch = errors.New("session: append metadata mismatch")
)

// EndedError carries the reason a session ended ("drain", "idle").
// errors.Is(err, ErrEnded) matches it.
type EndedError struct{ Reason string }

func (e *EndedError) Error() string { return "session: ended: " + e.Reason }

// Is reports that an EndedError is an ErrEnded.
func (e *EndedError) Is(target error) bool { return target == ErrEnded }

// Snapshot is one published state of a session's evolving Report.
type Snapshot struct {
	// ID is the monotonic per-session snapshot id (1-based) — the SSE
	// event id subscribers resume from.
	ID uint64
	// Gen is the append generation the snapshot covers: a snapshot with
	// Gen >= g reflects every append up to generation g.
	Gen uint64
	// Report is the analysis result; immutable once published.
	Report *core.Report
	// Data is the canonical JSON encoding of Report.
	Data []byte
	// At is the publication time.
	At time.Time
}

// Session is one live analysis session. All methods are safe for
// concurrent use.
type Session struct {
	// ID is the session identifier (hex, journal directory name).
	ID string
	// Query is the option query the session was opened with.
	Query url.Values
	// Opts is the resolved analysis configuration.
	Opts core.Options
	// Fingerprint is Opts.Fingerprint() — the cache-key half a diff
	// against a cached baseline digest shares with rescache.
	Fingerprint string
	// Created is the open (or original open, after recovery) time.
	Created time.Time

	m   *Manager
	dir string // journal directory; "" when the manager is memory-only

	mu         sync.Mutex
	haveMeta   bool
	meta       trace.Metadata
	events     []trace.Event
	samples    []trace.Sample
	comms      []trace.Comm
	decode     trace.DecodeStats
	warnings   []string // session-level degradations (journal corruption)
	bytes      int64
	segments   int
	lastSeq    uint64
	gen        uint64
	lastActive time.Time
	ended      bool
	endReason  string
	subs       map[*Subscriber]struct{}

	snapID     uint64
	ring       []*Snapshot
	analyzeErr string
	analyzeGen uint64

	dirty chan struct{} // cap 1: append coalescing
	stop  chan struct{}
	done  chan struct{}
}

// AppendResult acknowledges one accepted (or deduplicated) append.
type AppendResult struct {
	// Segment is the journal segment index the chunk landed in (the
	// next index on duplicates; -1 when the manager is memory-only).
	Segment int
	// Duplicate reports an idempotent replay: the client sequence number
	// was already applied, nothing changed.
	Duplicate bool
	// Events, Samples, Comms are the session's cumulative record counts.
	Events, Samples, Comms int
	// Bytes is the session's cumulative appended-byte total.
	Bytes int64
}

// decodeChunk decodes one append body — a complete UVT1 chunk — in the
// session's mode. Lenient salvages what it can and tallies the damage;
// a header-level failure is an error in both modes.
func decodeChunk(data []byte, lenient bool) (*trace.Trace, trace.DecodeStats, error) {
	if lenient {
		return trace.ReadFromLenient(bytes.NewReader(data))
	}
	tr, err := trace.ReadFrom(bytes.NewReader(data))
	return tr, trace.DecodeStats{}, err
}

// Append decodes chunk (strict or lenient per the session options),
// journals it, folds its records into the session state and marks the
// session dirty so the snapshot loop publishes an updated Report. The
// chunk must be a complete UVT1 trace sharing the session's timeline;
// record sets accumulate, metadata must agree on app and rank count.
//
// clientSeq, when non-zero, makes the append idempotent: a sequence
// number at or below the last applied one is acknowledged as a
// duplicate without re-applying, so a client retrying a timed-out
// append cannot double-count records. The chunk is durably journaled
// before the method returns nil.
func (s *Session) Append(ctx context.Context, chunk []byte, clientSeq uint64) (AppendResult, error) {
	tr, st, err := decodeChunk(chunk, s.Opts.Lenient)
	if err != nil {
		return AppendResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return AppendResult{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return AppendResult{}, &EndedError{Reason: s.endReason}
	}
	if clientSeq != 0 && clientSeq <= s.lastSeq {
		res := s.resultLocked()
		res.Duplicate = true
		return res, nil
	}
	if s.haveMeta && (tr.Meta.App != s.meta.App || tr.Meta.Ranks != s.meta.Ranks) {
		return AppendResult{}, fmt.Errorf("%w: chunk is %s/%d ranks, session is %s/%d ranks",
			ErrMismatch, tr.Meta.App, tr.Meta.Ranks, s.meta.App, s.meta.Ranks)
	}
	if err := s.m.reserve(s.bytes, int64(len(chunk))); err != nil {
		return AppendResult{}, err
	}
	if s.dir != "" {
		if err := writeFileSync(s.dir, segName(s.segments, clientSeq), chunk, s.m.observeFsync); err != nil {
			s.m.release(int64(len(chunk)))
			return AppendResult{}, fmt.Errorf("session: journal append: %w", err)
		}
	}
	s.applyLocked(tr, st, len(chunk), clientSeq)
	incC(s.m.cfg.Metrics.Appends)
	return s.resultLocked(), nil
}

// resultLocked builds the acknowledgement from the current state.
func (s *Session) resultLocked() AppendResult {
	seg := s.segments - 1
	if s.dir == "" {
		seg = -1
	}
	return AppendResult{
		Segment: seg,
		Events:  len(s.events),
		Samples: len(s.samples),
		Comms:   len(s.comms),
		Bytes:   s.bytes,
	}
}

// applyLocked folds one decoded chunk into the session state. Record
// slices are appended and re-sorted stably, which is equivalent to
// sorting the concatenation of all chunks once — so the accumulated
// state after K appends is exactly the K-chunk prefix trace.
func (s *Session) applyLocked(tr *trace.Trace, st trace.DecodeStats, n int, clientSeq uint64) {
	if !s.haveMeta {
		s.meta = tr.Meta
		s.meta.Regions = copyMap(tr.Meta.Regions)
		s.meta.Params = copyMap(tr.Meta.Params)
		s.haveMeta = true
	} else {
		if tr.Meta.Duration > s.meta.Duration {
			s.meta.Duration = tr.Meta.Duration
		}
		if s.meta.SamplePeriod == 0 {
			s.meta.SamplePeriod = tr.Meta.SamplePeriod
		}
		s.meta.Regions = mergeMap(s.meta.Regions, tr.Meta.Regions)
		s.meta.Params = mergeMap(s.meta.Params, tr.Meta.Params)
	}
	s.events = append(s.events, tr.Events...)
	s.samples = append(s.samples, tr.Samples...)
	s.comms = append(s.comms, tr.Comms...)
	view := trace.Trace{Events: s.events, Samples: s.samples, Comms: s.comms}
	view.Sort()
	s.decode.Add(st)
	s.bytes += int64(n)
	s.segments++
	if clientSeq > s.lastSeq {
		s.lastSeq = clientSeq
	}
	s.gen++
	s.lastActive = time.Now()
	select {
	case s.dirty <- struct{}{}:
	default:
	}
}

// copyMap deep-copies a metadata map, preserving nil-ness so recovered
// and live metadata stay deep-equal to the batch trace's.
func copyMap[K comparable](m map[K]string) map[K]string {
	if m == nil {
		return nil
	}
	out := make(map[K]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeMap adds src entries absent from dst (first chunk wins on
// conflicts), allocating only when something is actually added.
func mergeMap[K comparable](dst, src map[K]string) map[K]string {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			if dst == nil {
				dst = make(map[K]string, len(src))
			}
			dst[k] = v
		}
	}
	return dst
}

// loop is the per-session snapshot goroutine: wait until dirty, take a
// manager analysis slot, analyze, publish. Coalescing lives in the
// cap-1 dirty channel — any number of appends during an analysis fold
// into one follow-up snapshot of the newest state.
func (s *Session) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case <-s.dirty:
		}
		select {
		case s.m.slots <- struct{}{}:
		case <-s.stop:
			return
		}
		s.snapshot(s.m.ctx)
		<-s.m.slots
	}
}

// snapshot analyzes the current accumulated state and publishes the
// result. The record slices are copied under the lock and analyzed
// outside it, so appends never wait on an analysis.
func (s *Session) snapshot(ctx context.Context) {
	s.mu.Lock()
	if len(s.events) == 0 && len(s.samples) == 0 {
		s.mu.Unlock()
		return
	}
	gen := s.gen
	tr := &trace.Trace{
		Meta:    s.meta,
		Events:  append([]trace.Event(nil), s.events...),
		Samples: append([]trace.Sample(nil), s.samples...),
		Comms:   append([]trace.Comm(nil), s.comms...),
	}
	// Appends mutate the metadata maps in place; the analysis reads its
	// copy outside the lock, so it needs its own.
	tr.Meta.Regions = copyMap(s.meta.Regions)
	tr.Meta.Params = copyMap(s.meta.Params)
	st := s.decode
	warns := append([]string(nil), s.warnings...)
	s.mu.Unlock()

	rep, err := core.AnalyzeContext(ctx, tr, s.Opts)
	if err != nil {
		// A strict session's prefix can be transiently invalid (a chunk
		// boundary inside an MPI call); the failure is recorded, the last
		// good snapshot stands, and the next append retries.
		s.mu.Lock()
		s.analyzeErr = err.Error()
		s.analyzeGen = gen
		s.mu.Unlock()
		if ctx.Err() == nil {
			s.m.cfg.Logger.Warn("session snapshot failed", "session", s.ID, "err", err)
		}
		return
	}
	if st.Degraded() {
		rep.NoteDecode(st)
	}
	if len(warns) > 0 {
		rep.Warnings = append(warns, rep.Warnings...)
		rep.Degraded = true
	}
	rep.Warnings = core.BoundWarnings(rep.Warnings)
	data, err := json.Marshal(rep)
	if err != nil {
		s.m.cfg.Logger.Error("session snapshot does not encode", "session", s.ID, "err", err)
		return
	}

	s.mu.Lock()
	s.analyzeErr = ""
	s.snapID++
	snap := &Snapshot{ID: s.snapID, Gen: gen, Report: rep, Data: data, At: time.Now()}
	s.ring = append(s.ring, snap)
	if len(s.ring) > s.m.cfg.Ring {
		s.ring = append([]*Snapshot(nil), s.ring[len(s.ring)-s.m.cfg.Ring:]...)
	}
	subs := make([]*Subscriber, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.push(snap)
	}
	incC(s.m.cfg.Metrics.Snapshots)
}

// Latest returns the most recent published snapshot, or nil before the
// first one.
func (s *Session) Latest() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return nil
	}
	return s.ring[len(s.ring)-1]
}

// Barrier blocks until a snapshot covering every append made before the
// call is published and returns it. If the analysis of the current
// state failed (and no newer append has fixed it), the analysis error
// is returned instead.
func (s *Session) Barrier(ctx context.Context) (*Snapshot, error) {
	s.mu.Lock()
	want := s.gen
	s.mu.Unlock()
	for {
		s.mu.Lock()
		var latest *Snapshot
		if len(s.ring) > 0 {
			latest = s.ring[len(s.ring)-1]
		}
		aerr, agen := s.analyzeErr, s.analyzeGen
		ended, reason := s.ended, s.endReason
		s.mu.Unlock()
		if latest != nil && latest.Gen >= want {
			return latest, nil
		}
		if aerr != "" && agen >= want {
			return nil, errors.New(aerr)
		}
		if ended {
			return nil, &EndedError{Reason: reason}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Status is a point-in-time summary for handlers and operators.
type Status struct {
	ID                     string
	Fingerprint            string
	Events, Samples, Comms int
	Bytes                  int64
	Segments               int
	Snapshots              uint64
	LastError              string `json:",omitempty"`
	Warnings               []string
	Ended                  bool
	EndReason              string `json:",omitempty"`
}

// Status reports the session's current shape.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		ID:          s.ID,
		Fingerprint: s.Fingerprint,
		Events:      len(s.events),
		Samples:     len(s.samples),
		Comms:       len(s.comms),
		Bytes:       s.bytes,
		Segments:    s.segments,
		Snapshots:   s.snapID,
		LastError:   s.analyzeErr,
		Warnings:    append([]string(nil), s.warnings...),
		Ended:       s.ended,
		EndReason:   s.endReason,
	}
}

// end terminates the session: appends start failing, the snapshot loop
// stops, and every subscriber is released with the reason. Idempotent.
func (s *Session) end(reason string) {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.endReason = reason
	subs := make([]*Subscriber, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subs = make(map[*Subscriber]struct{})
	s.mu.Unlock()
	close(s.stop)
	for _, sub := range subs {
		sub.end(reason)
	}
}
