package session_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/trace"
)

func genTrace(t *testing.T, name string, ranks, iters int) *trace.Trace {
	t.Helper()
	app, err := apps.ByName(name, iters)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(ranks), app)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func encode(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// prefixUnion rebuilds the trace the first k chunks describe: the
// concatenated record sets, stably re-sorted — exactly what the session
// accumulates.
func prefixUnion(chunks []*trace.Trace, k int) *trace.Trace {
	out := &trace.Trace{Meta: chunks[0].Meta}
	for _, ch := range chunks[:k] {
		out.Events = append(out.Events, ch.Events...)
		out.Samples = append(out.Samples, ch.Samples...)
		out.Comms = append(out.Comms, ch.Comms...)
	}
	out.Sort()
	return out
}

// normReports clears the legitimately run-dependent fields (stage wall
// clock and byte counts, NaN silhouettes) before DeepEqual.
func normReports(a, b *core.Report) {
	for i := range a.Pipeline {
		a.Pipeline[i].Wall, a.Pipeline[i].Bytes = 0, 0
	}
	for i := range b.Pipeline {
		b.Pipeline[i].Wall, b.Pipeline[i].Bytes = 0, 0
	}
	if math.IsNaN(a.Clustering.Silhouette) && math.IsNaN(b.Clustering.Silhouette) {
		a.Clustering.Silhouette, b.Clustering.Silhouette = 0, 0
	}
}

func newManager(t *testing.T, cfg session.Config) *session.Manager {
	t.Helper()
	if cfg.Options == nil {
		cfg.Options = func(url.Values) (core.Options, error) {
			return core.Options{Parallelism: 2}, nil
		}
	}
	m, err := session.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

// TestChunksPartition is the chunker's contract: record-preserving
// (concatenation sorts back to the input) and prefix-valid (every
// prefix union passes strict validation).
func TestChunksPartition(t *testing.T) {
	tr := genTrace(t, "stencil", 4, 40)
	for _, n := range []int{1, 2, 5, 16} {
		chunks := session.Chunks(tr, n)
		if len(chunks) < 1 || len(chunks) > n {
			t.Fatalf("n=%d: got %d chunks", n, len(chunks))
		}
		union := prefixUnion(chunks, len(chunks))
		if !reflect.DeepEqual(union.Events, tr.Events) ||
			!reflect.DeepEqual(union.Samples, tr.Samples) ||
			!reflect.DeepEqual(union.Comms, tr.Comms) {
			t.Fatalf("n=%d: chunk union does not reproduce the input records", n)
		}
		for k := 1; k <= len(chunks); k++ {
			if err := prefixUnion(chunks, k).Validate(); err != nil {
				t.Fatalf("n=%d: prefix of %d chunks invalid: %v", n, k, err)
			}
		}
		for i, ch := range chunks {
			if err := ch.Validate(); err != nil {
				t.Fatalf("n=%d: chunk %d invalid standalone: %v", n, i, err)
			}
		}
	}
}

// TestSessionPrefixEquivalence is the live-session contract: after K
// appended chunks, the session's snapshot Report deep-equals a batch
// Analyze over the union of those chunks — for every prefix, across
// strict/lenient and row/columnar paths, and with the online folder.
func TestSessionPrefixEquivalence(t *testing.T) {
	tr := genTrace(t, "stencil", 4, 40)
	chunks := session.Chunks(tr, 4)
	if len(chunks) < 2 {
		t.Fatalf("trace yielded only %d chunks", len(chunks))
	}
	cases := []struct {
		name string
		opts core.Options
	}{
		{"strict-row", core.Options{Parallelism: 2, Columnar: core.PathRow}},
		{"strict-columnar", core.Options{Parallelism: 2, Columnar: core.PathColumnar}},
		{"lenient-row", core.Options{Parallelism: 2, Lenient: true, Columnar: core.PathRow}},
		{"lenient-columnar", core.Options{Parallelism: 2, Lenient: true, Columnar: core.PathColumnar}},
	}
	online := core.Options{Parallelism: 2}
	online.Stream.Online = true
	online.Stream.TrainBursts = 64
	cases = append(cases, struct {
		name string
		opts core.Options
	}{"online", online})

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := newManager(t, session.Config{
				Dir: t.TempDir(),
				Options: func(url.Values) (core.Options, error) {
					return tc.opts, nil
				},
			})
			s, err := m.Open(url.Values{})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for k, ch := range chunks {
				if _, err := s.Append(ctx, encode(t, ch), uint64(k+1)); err != nil {
					t.Fatalf("append %d: %v", k, err)
				}
				snap, err := s.Barrier(ctx)
				if err != nil {
					t.Fatalf("barrier after %d: %v", k+1, err)
				}
				want, err := core.Analyze(prefixUnion(chunks, k+1), tc.opts)
				if err != nil {
					t.Fatalf("batch analyze of %d-chunk prefix: %v", k+1, err)
				}
				normReports(snap.Report, want)
				if !reflect.DeepEqual(snap.Report, want) {
					t.Fatalf("snapshot after %d chunks differs from batch analysis", k+1)
				}
			}
		})
	}
}

// TestSessionCrashRecovery is the durability contract: kill the daemon
// (abandon the manager without any shutdown) after K of N appends,
// rebuild a manager over the same journal directory, feed the remaining
// chunks, and the final Report must deep-equal an uninterrupted run.
func TestSessionCrashRecovery(t *testing.T) {
	tr := genTrace(t, "cg", 4, 40)
	chunks := session.Chunks(tr, 6)
	if len(chunks) < 3 {
		t.Fatalf("trace yielded only %d chunks", len(chunks))
	}
	k := len(chunks) / 2
	dir := t.TempDir()
	opts := core.Options{Parallelism: 2}
	hook := func(url.Values) (core.Options, error) { return opts, nil }

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	m1 := newManager(t, session.Config{Dir: dir, TTL: time.Hour, Options: hook})
	s1, err := m1.Open(url.Values{"lenient": {"0"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if _, err := s1.Append(ctx, encode(t, chunks[i]), uint64(i+1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// No Close, no flush: the journal on disk is all that survives,
	// exactly as after a kill -9.

	m2 := newManager(t, session.Config{Dir: dir, TTL: time.Hour, Options: hook})
	s2, ok := m2.Get(s1.ID)
	if !ok {
		t.Fatalf("session %s not recovered", s1.ID)
	}
	if len(s2.Status().Warnings) != 0 {
		t.Fatalf("clean journal recovered with warnings: %v", s2.Status().Warnings)
	}
	// A duplicate of the last acknowledged append must still dedupe.
	res, err := s2.Append(ctx, encode(t, chunks[k-1]), uint64(k))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate {
		t.Fatal("recovered session forgot the applied sequence numbers")
	}
	for i := k; i < len(chunks); i++ {
		if _, err := s2.Append(ctx, encode(t, chunks[i]), uint64(i+1)); err != nil {
			t.Fatalf("append %d after recovery: %v", i, err)
		}
	}
	snap, err := s2.Barrier(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	normReports(snap.Report, want)
	if !reflect.DeepEqual(snap.Report, want) {
		t.Fatal("post-recovery Report differs from an uninterrupted run")
	}
}

// TestSessionRecoveryTruncatedSegment: a torn journal segment recovers
// the longest clean prefix, flags the damage, and keeps serving.
func TestSessionRecoveryTruncatedSegment(t *testing.T) {
	tr := genTrace(t, "stencil", 2, 30)
	chunks := session.Chunks(tr, 3)
	if len(chunks) < 2 {
		t.Skip("trace too small to chunk")
	}
	dir := t.TempDir()
	m1 := newManager(t, session.Config{Dir: dir, TTL: time.Hour})
	s1, err := m1.Open(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, ch := range chunks {
		if _, err := s1.Append(ctx, encode(t, ch), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	// Truncate the last segment to a torn write.
	sdir := filepath.Join(dir, s1.ID)
	entries, err := os.ReadDir(sdir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			segs = append(segs, filepath.Join(sdir, e.Name()))
		}
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newManager(t, session.Config{Dir: dir, TTL: time.Hour})
	s2, ok := m2.Get(s1.ID)
	if !ok {
		t.Fatal("damaged-journal session not recovered at all")
	}
	st := s2.Status()
	if len(st.Warnings) == 0 {
		t.Fatal("truncated segment recovered without a warning")
	}
	if st.Segments != len(chunks)-1 {
		t.Fatalf("recovered %d segments, want %d", st.Segments, len(chunks)-1)
	}
	// Still serviceable: the lost chunk can be re-appended.
	if _, err := s2.Append(ctx, encode(t, chunks[len(chunks)-1]), 0); err != nil {
		t.Fatalf("append after degraded recovery: %v", err)
	}
	if _, err := s2.Barrier(ctx); err != nil {
		t.Fatalf("no snapshot after degraded recovery: %v", err)
	}
}

// TestSessionIdempotentAppend: a replayed sequence number acknowledges
// as a duplicate without changing the session.
func TestSessionIdempotentAppend(t *testing.T) {
	tr := genTrace(t, "stencil", 2, 20)
	m := newManager(t, session.Config{Dir: t.TempDir()})
	s, err := m.Open(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	chunk := encode(t, tr)
	first, err := s.Append(ctx, chunk, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Append(ctx, chunk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Duplicate {
		t.Fatal("replayed seq not flagged as duplicate")
	}
	if second.Events != first.Events || second.Bytes != first.Bytes {
		t.Fatalf("duplicate append changed the session: %+v vs %+v", second, first)
	}
}

// TestSessionBudgets: per-session and global byte budgets and the
// session-count cap reject with the right sentinels, and never corrupt
// the session.
func TestSessionBudgets(t *testing.T) {
	tr := genTrace(t, "stencil", 2, 20)
	chunk := encode(t, tr)

	m := newManager(t, session.Config{MaxSessionBytes: int64(len(chunk)) + 10})
	s, err := m.Open(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(context.Background(), chunk, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(context.Background(), chunk, 2); !errors.Is(err, session.ErrSessionBudget) {
		t.Fatalf("want ErrSessionBudget, got %v", err)
	}

	g := newManager(t, session.Config{MaxTotalBytes: int64(len(chunk)) + 10})
	gs, err := g.Open(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gs.Append(context.Background(), chunk, 1); err != nil {
		t.Fatal(err)
	}
	gs2, err := g.Open(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gs2.Append(context.Background(), chunk, 1); !errors.Is(err, session.ErrGlobalBudget) {
		t.Fatalf("want ErrGlobalBudget, got %v", err)
	}

	c := newManager(t, session.Config{MaxSessions: 1})
	if _, err := c.Open(url.Values{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(url.Values{}); !errors.Is(err, session.ErrTooManySessions) {
		t.Fatalf("want ErrTooManySessions, got %v", err)
	}
}

// TestSessionMetaMismatch: a chunk from a different application is
// rejected without being applied.
func TestSessionMetaMismatch(t *testing.T) {
	a := genTrace(t, "stencil", 2, 20)
	b := genTrace(t, "cg", 2, 20)
	m := newManager(t, session.Config{})
	s, err := m.Open(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(context.Background(), encode(t, a), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(context.Background(), encode(t, b), 2); !errors.Is(err, session.ErrMismatch) {
		t.Fatalf("want ErrMismatch, got %v", err)
	}
}

// TestSessionTTLEviction: an idle session is evicted, its subscribers
// get the "idle" end reason, and its journal is deleted.
func TestSessionTTLEviction(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, session.Config{Dir: dir, TTL: 50 * time.Millisecond})
	s, err := m.Open(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe(0)
	defer s.Unsubscribe(sub)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = sub.Next(ctx)
	var ee *session.EndedError
	if !errors.As(err, &ee) || ee.Reason != "idle" {
		t.Fatalf("want idle EndedError, got %v", err)
	}
	if _, ok := m.Get(s.ID); ok {
		t.Fatal("evicted session still resolvable")
	}
	// Subscribers are released before the journal is deleted; poll
	// briefly for the removal.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, s.ID)); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted session journal still on disk")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr := genTrace(t, "stencil", 2, 20)
	if _, err := s.Append(ctx, encode(t, tr), 0); !errors.Is(err, session.ErrEnded) {
		t.Fatalf("append to evicted session: want ErrEnded, got %v", err)
	}
}

// TestSessionDrainKeepsJournal: Close ends sessions with reason "drain"
// and leaves the journal for the next start.
func TestSessionDrainKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, session.Config{Dir: dir, TTL: time.Hour})
	s, err := m.Open(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	tr := genTrace(t, "stencil", 2, 20)
	if _, err := s.Append(context.Background(), encode(t, tr), 1); err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Close(ctx)

	for {
		_, err := sub.Next(ctx)
		if err == nil {
			continue // drain any published snapshots first
		}
		var ee *session.EndedError
		if !errors.As(err, &ee) || ee.Reason != "drain" {
			t.Fatalf("want drain EndedError, got %v", err)
		}
		break
	}
	if _, err := os.Stat(filepath.Join(dir, s.ID, "meta.json")); err != nil {
		t.Fatalf("drain deleted the journal: %v", err)
	}

	// And the journal is complete: a fresh manager recovers the session.
	m2 := newManager(t, session.Config{Dir: dir, TTL: time.Hour})
	s2, ok := m2.Get(s.ID)
	if !ok {
		t.Fatal("drained session not recovered by the next manager")
	}
	if got := s2.Status().Segments; got != 1 {
		t.Fatalf("recovered %d segments, want 1", got)
	}
}

// TestSubscriberCoalescing: a subscriber that never reads is bounded at
// the ring size and counts its drops; the analysis path never blocks.
func TestSubscriberCoalescing(t *testing.T) {
	tr := genTrace(t, "stencil", 2, 30)
	chunks := session.Chunks(tr, 8)
	m := newManager(t, session.Config{Ring: 2})
	s, err := m.Open(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe(0)
	defer s.Unsubscribe(sub)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, ch := range chunks {
		if _, err := s.Append(ctx, encode(t, ch), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Barrier(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Status()
	if st.Snapshots < 3 {
		t.Skipf("only %d snapshots published, cannot exercise coalescing", st.Snapshots)
	}
	// The never-reading subscriber holds at most Ring pending snapshots.
	seen := 0
	for {
		sctx, scancel := context.WithTimeout(ctx, 100*time.Millisecond)
		_, err := sub.Next(sctx)
		scancel()
		if err != nil {
			break
		}
		seen++
	}
	if seen > 2 {
		t.Fatalf("slow subscriber accumulated %d pending snapshots, ring is 2", seen)
	}
	if int(sub.Dropped())+seen < int(st.Snapshots) {
		t.Fatalf("drops (%d) + delivered (%d) < published (%d)", sub.Dropped(), seen, st.Snapshots)
	}
}

// TestSubscriberResume: subscribing with a last-seen id replays only
// newer retained snapshots — no duplicates, no gaps.
func TestSubscriberResume(t *testing.T) {
	tr := genTrace(t, "stencil", 2, 30)
	chunks := session.Chunks(tr, 4)
	m := newManager(t, session.Config{})
	s, err := m.Open(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, ch := range chunks {
		if _, err := s.Append(ctx, encode(t, ch), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Barrier(ctx); err != nil {
			t.Fatal(err)
		}
	}
	latest := s.Latest()
	if latest == nil {
		t.Fatal("no snapshots")
	}
	for lastSeen := uint64(0); lastSeen <= latest.ID; lastSeen++ {
		sub := s.Subscribe(lastSeen)
		want := lastSeen + 1
		for {
			sctx, scancel := context.WithTimeout(ctx, 100*time.Millisecond)
			sn, err := sub.Next(sctx)
			scancel()
			if err != nil {
				break
			}
			if sn.ID != want {
				t.Fatalf("resume from %d: got snapshot %d, want %d", lastSeen, sn.ID, want)
			}
			want++
		}
		if want <= latest.ID {
			t.Fatalf("resume from %d stopped at %d, latest is %d", lastSeen, want-1, latest.ID)
		}
		s.Unsubscribe(sub)
	}
}

// TestChunksDegenerate: tiny and rankless traces produce a usable chunk
// list instead of panicking.
func TestChunksDegenerate(t *testing.T) {
	empty := &trace.Trace{Meta: trace.Metadata{App: "x", Ranks: 1, Duration: 10}}
	chunks := session.Chunks(empty, 4)
	if len(chunks) != 1 {
		t.Fatalf("empty trace: got %d chunks, want 1", len(chunks))
	}
	if got := fmt.Sprint(len(chunks[0].Events)); got != "0" {
		t.Fatalf("empty trace chunk has events: %s", got)
	}
}
