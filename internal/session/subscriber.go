package session

import (
	"context"
	"sync"
)

// Subscriber is one consumer of a session's snapshot stream. Each
// subscriber owns a bounded queue: the publisher never blocks on a
// subscriber — when the queue is full the oldest pending snapshot is
// dropped (and counted), so a consumer that stops reading degrades to
// "latest snapshots only" instead of stalling the analysis path.
type Subscriber struct {
	sess *Session

	mu      sync.Mutex
	queue   []*Snapshot
	max     int
	dropped uint64
	reason  string

	notify chan struct{}
	ended  chan struct{}
}

// Subscribe attaches a new subscriber. Snapshots still buffered in the
// session ring with an id greater than lastID are queued immediately,
// so a consumer resuming with its last seen SSE event id receives every
// retained snapshot exactly once, in order, with no duplicates. Pass 0
// to start from the oldest retained snapshot. Subscribing to an ended
// session returns a subscriber whose Next drains the backlog and then
// reports the end reason.
func (s *Session) Subscribe(lastID uint64) *Subscriber {
	sub := &Subscriber{
		sess:   s,
		max:    s.m.cfg.Ring,
		notify: make(chan struct{}, 1),
		ended:  make(chan struct{}),
	}
	s.mu.Lock()
	for _, sn := range s.ring {
		if sn.ID > lastID {
			sub.queue = append(sub.queue, sn)
		}
	}
	if s.ended {
		sub.reason = s.endReason
		close(sub.ended)
	} else {
		s.subs[sub] = struct{}{}
	}
	s.mu.Unlock()
	return sub
}

// Unsubscribe detaches sub; pending snapshots are discarded.
func (s *Session) Unsubscribe(sub *Subscriber) {
	s.mu.Lock()
	delete(s.subs, sub)
	s.mu.Unlock()
}

// push enqueues a snapshot, dropping the oldest pending one when the
// consumer has fallen a full queue behind. Never blocks.
func (sub *Subscriber) push(sn *Snapshot) {
	sub.mu.Lock()
	if len(sub.queue) >= sub.max {
		copy(sub.queue, sub.queue[1:])
		sub.queue[len(sub.queue)-1] = sn
		sub.dropped++
		incC(sub.sess.m.cfg.Metrics.SnapshotsDropped)
	} else {
		sub.queue = append(sub.queue, sn)
	}
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// end releases a blocked Next with the session's end reason.
func (sub *Subscriber) end(reason string) {
	sub.mu.Lock()
	sub.reason = reason
	sub.mu.Unlock()
	close(sub.ended)
}

// Next returns the next pending snapshot, blocking until one arrives,
// the session ends (an *EndedError matching ErrEnded, after the
// backlog drains) or ctx expires.
func (sub *Subscriber) Next(ctx context.Context) (*Snapshot, error) {
	for {
		sub.mu.Lock()
		if len(sub.queue) > 0 {
			sn := sub.queue[0]
			sub.queue[0] = nil
			sub.queue = sub.queue[1:]
			sub.mu.Unlock()
			return sn, nil
		}
		sub.mu.Unlock()
		select {
		case <-sub.notify:
		case <-sub.ended:
			sub.mu.Lock()
			if len(sub.queue) > 0 {
				sn := sub.queue[0]
				sub.queue[0] = nil
				sub.queue = sub.queue[1:]
				sub.mu.Unlock()
				return sn, nil
			}
			reason := sub.reason
			sub.mu.Unlock()
			return nil, &EndedError{Reason: reason}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Dropped reports how many snapshots were coalesced away because this
// subscriber fell behind.
func (sub *Subscriber) Dropped() uint64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.dropped
}
