package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/kernels"
	"repro/internal/trace"
)

// engine is the inter-rank coordinator: it owns the region-name table,
// point-to-point mailboxes and collective slots. All its virtual-time
// computations are order-independent so the trace is deterministic even
// though ranks run as concurrent goroutines.
type engine struct {
	cfg *Config

	regMu    sync.Mutex
	regions  map[string]uint32
	regOrder []string

	mailMu    sync.Mutex
	mailboxes map[mailKey]*mailbox

	collMu sync.Mutex
	colls  []*collSlot
}

type mailKey struct{ src, dst int32 }

func newEngine(cfg *Config) *engine {
	return &engine{
		cfg:       cfg,
		regions:   make(map[string]uint32),
		mailboxes: make(map[mailKey]*mailbox),
	}
}

// internFixedRegions pre-assigns region ids in a deterministic order:
// "main", the MPI operation names, then every kernel name and region-span
// name in sorted kernel order. Runtime interning of undeclared names still
// works but may produce run-order-dependent ids; declared apps never hit
// that path.
func (e *engine) internFixedRegions(ks []*kernels.Kernel) {
	e.intern("main")
	for _, op := range trace.AllMPIOps() {
		e.intern(op.String())
	}
	byName := make(map[string]*kernels.Kernel, len(ks))
	for _, k := range ks {
		byName[k.Name] = k
	}
	for _, name := range sortedKernelNames(ks) {
		e.intern(name)
		for _, span := range byName[name].Regions {
			e.intern(span.Name)
		}
	}
}

// intern returns the stable id for a region name, assigning one if needed.
// Ids start at 1 to match trace.Builder's numbering, so the assembled
// trace's tables line up with the ids embedded in sample stacks.
func (e *engine) intern(name string) uint32 {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	if id, ok := e.regions[name]; ok {
		return id
	}
	id := uint32(len(e.regOrder) + 1)
	e.regions[name] = id
	e.regOrder = append(e.regOrder, name)
	return id
}

// regionNames returns all interned names in id order.
func (e *engine) regionNames() []string {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	return append([]string(nil), e.regOrder...)
}

// ---------------------------------------------------------------------------
// Point-to-point messaging

// message is a posted but not yet matched send.
type message struct {
	tag      int32
	size     int64
	sendTime trace.Time
	// exitCh is non-nil for rendezvous sends; the receiver reports the
	// common completion time through it.
	exitCh chan trace.Time
}

type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []*message
}

func (e *engine) mailboxFor(src, dst int32) *mailbox {
	e.mailMu.Lock()
	defer e.mailMu.Unlock()
	k := mailKey{src, dst}
	mb, ok := e.mailboxes[k]
	if !ok {
		mb = &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		e.mailboxes[k] = mb
	}
	return mb
}

// post enqueues a message from src to dst.
func (e *engine) post(src, dst int32, m *message) {
	mb := e.mailboxFor(src, dst)
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// match blocks until a message with the given tag is available from src to
// dst and removes it from the queue. Matching is FIFO among equal tags,
// mirroring MPI ordering semantics.
func (e *engine) match(src, dst int32, tag int32) *message {
	mb := e.mailboxFor(src, dst)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if m.tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// transferCost is the pure wire cost of a message.
func (e *engine) transferCost(size int64) trace.Time {
	return e.cfg.Network.Latency + trace.Time(float64(size)/e.cfg.Network.Bandwidth)
}

// ---------------------------------------------------------------------------
// Collectives

// collSlot synchronizes one collective operation instance. Ranks join the
// slot matching their per-rank collective sequence number; the last rank to
// arrive computes the common exit time.
type collSlot struct {
	mu       sync.Mutex
	op       trace.MPIOp
	bytes    int64
	count    int
	maxEnter trace.Time
	exit     trace.Time
	err      error
	done     chan struct{}
}

func (e *engine) slot(idx int) *collSlot {
	e.collMu.Lock()
	defer e.collMu.Unlock()
	for len(e.colls) <= idx {
		e.colls = append(e.colls, &collSlot{done: make(chan struct{})})
	}
	return e.colls[idx]
}

// collective joins the caller's next collective slot and returns the common
// exit time. All ranks must call the same operation with the same payload
// size in the same order; a mismatch is reported as a panic (caught by
// Run), mirroring the undefined behaviour such programs have under real
// MPI.
func (e *engine) collective(seq int, now trace.Time, op trace.MPIOp, bytes int64) trace.Time {
	s := e.slot(seq)
	s.mu.Lock()
	if s.count == 0 {
		s.op, s.bytes = op, bytes
	} else if s.op != op || s.bytes != bytes {
		s.err = fmt.Errorf("collective mismatch at slot %d: %v/%d vs %v/%d", seq, s.op, s.bytes, op, bytes)
	}
	s.count++
	if now > s.maxEnter {
		s.maxEnter = now
	}
	if s.count == e.cfg.Ranks {
		s.exit = s.maxEnter + e.collectiveCost(op, bytes)
		close(s.done)
	}
	s.mu.Unlock()
	<-s.done
	if s.err != nil {
		panic(s.err)
	}
	return s.exit
}

// collectiveCost models tree-based collectives: log₂(P) stages of
// latency-plus-transfer, doubled for allreduce (reduce + broadcast) and
// scaled by P-1 for all-to-all.
func (e *engine) collectiveCost(op trace.MPIOp, bytes int64) trace.Time {
	p := e.cfg.Ranks
	if p == 1 {
		return 0
	}
	stages := trace.Time(math.Ceil(math.Log2(float64(p))))
	per := e.transferCost(bytes)
	switch op {
	case trace.MPIBarrier:
		return stages * e.cfg.Network.Latency
	case trace.MPIAllreduce:
		return 2 * stages * per
	case trace.MPIBcast, trace.MPIReduce:
		return stages * per
	case trace.MPIAlltoall:
		return trace.Time(p-1) * per
	default:
		return stages * per
	}
}
