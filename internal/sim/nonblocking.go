package sim

import (
	"fmt"

	"repro/internal/trace"
)

// Request is a handle to an outstanding nonblocking operation, completed
// by Waitall. Requests must be completed on the rank that created them.
type Request struct {
	owner  *Rank
	isSend bool
	msg    *message // send requests: the posted message
	src    int32    // recv requests: matching parameters
	tag    int32
	posted trace.Time // recv requests: when the buffer was posted
	done   bool
}

// Isend posts a nonblocking send and returns immediately: the message is
// injected into the network at the current virtual time, and any
// rendezvous handshake is deferred to Waitall — which is exactly what
// gives communication/computation overlap. The probe cost of the call is
// charged like any instrumented MPI function.
func (r *Rank) Isend(dst int, bytes int64, tag int) *Request {
	r.checkPeer(dst)
	r.event(trace.EvMPI, int64(trace.MPIIsend), true)
	m := r.sendStart(int32(dst), bytes, int32(tag))
	r.mpiExit()
	return &Request{owner: r, isSend: true, msg: m}
}

// Irecv posts a nonblocking receive. Matching is deferred to Waitall; the
// call itself only costs its probes. Note the simplification relative to
// real MPI: a blocking Recv posted between this Irecv and its Waitall
// would match ahead of it, so programs should not interleave the two
// forms on the same (source, tag).
func (r *Rank) Irecv(src int, tag int) *Request {
	r.checkPeer(src)
	posted := r.now
	r.event(trace.EvMPI, int64(trace.MPIIrecv), true)
	r.mpiExit()
	return &Request{owner: r, src: int32(src), tag: int32(tag), posted: posted}
}

// Waitall blocks until every request completes, advancing the rank's
// clock to the latest completion. Requests are processed in argument
// order (deterministic); completing an already-completed request is an
// error, as in MPI.
func (r *Rank) Waitall(reqs ...*Request) {
	frame := r.mpiEnter(trace.MPIWaitall)
	for i, req := range reqs {
		if req == nil {
			panic(fmt.Sprintf("sim: rank %d Waitall request %d is nil", r.id, i))
		}
		if req.owner != r {
			panic(fmt.Sprintf("sim: rank %d completing rank %d's request", r.id, req.owner.id))
		}
		if req.done {
			panic(fmt.Sprintf("sim: rank %d Waitall request %d already completed", r.id, i))
		}
		req.done = true
		if req.isSend {
			// Eager sends were already injected at Isend time with the
			// transfer overlapping computation — the wait is free. Only
			// rendezvous sends block here, until the receiver set the
			// common completion time.
			if req.msg.exitCh != nil {
				exit := <-req.msg.exitCh
				r.advanceIdle(exit, frame)
			}
		} else {
			r.recvMatched(req.src, req.tag, frame, req.posted)
		}
	}
	r.mpiExit()
}
