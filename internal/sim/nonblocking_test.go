package sim

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/trace"
)

func TestIsendIrecvWaitallBasic(t *testing.T) {
	k := simpleKernel("w", 1, 100_000, 1000)
	app := &testApp{name: "nb", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(1, 1024, 7)
			r.Compute(k)
			r.Waitall(req)
		} else {
			req := r.Irecv(0, 7)
			r.Compute(k)
			r.Waitall(req)
		}
	}}
	tr, err := Run(quietConfig(2), app)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Comms) != 1 {
		t.Fatalf("comms = %d", len(tr.Comms))
	}
	c := tr.Comms[0]
	// Message sent at ~0; physical arrival = latency + transfer = 2024,
	// well before the receiver's Waitall at 100 µs (the transfer
	// overlapped the computation).
	if c.SendTime != 0 || c.RecvTime != 2024 {
		t.Fatalf("comm = %+v", c)
	}
	// Isend/Irecv/Waitall events all present and balanced.
	ops := map[trace.MPIOp]int{}
	for _, e := range tr.Events {
		if e.Type == trace.EvMPI && e.Value != 0 {
			ops[trace.MPIOp(e.Value)]++
		}
	}
	if ops[trace.MPIIsend] != 1 || ops[trace.MPIIrecv] != 1 || ops[trace.MPIWaitall] != 2 {
		t.Fatalf("ops = %v", ops)
	}
}

// TestOverlapBeatsBlocking demonstrates the point of nonblocking ops: a
// rendezvous exchange overlapped with computation finishes earlier than
// the blocking equivalent.
func TestOverlapBeatsBlocking(t *testing.T) {
	k := simpleKernel("w", 1, 5_000_000, 1000) // 5 ms of overlap budget
	const big = 4 << 20                        // 4 MiB rendezvous: 4 ms transfer + latency

	blocking := &testApp{name: "blk", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		peer := 1 - r.Rank()
		if r.Rank() == 0 {
			r.Send(peer, big, 1)
			r.Compute(k)
		} else {
			r.Recv(peer, 1)
			r.Compute(k)
		}
		r.Barrier()
	}}
	overlapped := &testApp{name: "ovl", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		peer := 1 - r.Rank()
		var req *Request
		if r.Rank() == 0 {
			req = r.Isend(peer, big, 1)
		} else {
			req = r.Irecv(peer, 1)
		}
		r.Compute(k)
		r.Waitall(req)
		r.Barrier()
	}}
	trB, err := Run(quietConfig(2), blocking)
	if err != nil {
		t.Fatal(err)
	}
	trO, err := Run(quietConfig(2), overlapped)
	if err != nil {
		t.Fatal(err)
	}
	if trO.Meta.Duration >= trB.Meta.Duration {
		t.Fatalf("no overlap benefit: %d vs %d", trO.Meta.Duration, trB.Meta.Duration)
	}
	// The overlapped version should hide essentially the whole transfer:
	// duration ≈ compute + barrier, i.e. several ms less.
	if saved := trB.Meta.Duration - trO.Meta.Duration; saved < 3_000_000 {
		t.Fatalf("overlap saved only %.2f ms", float64(saved)/1e6)
	}
}

func TestWaitallMisuse(t *testing.T) {
	cases := map[string]func(r *Rank, peer int){
		"nil request":   func(r *Rank, peer int) { r.Waitall(nil) },
		"double wait":   func(r *Rank, peer int) { req := r.Irecv(peer, 1); r.Waitall(req); r.Waitall(req) },
		"foreign owner": nil, // covered separately below
	}
	delete(cases, "foreign owner")
	for name, f := range cases {
		app := &testApp{name: "bad", ks: nil, run: func(r *Rank) {
			peer := 1 - r.Rank()
			if r.Rank() == 0 {
				r.Isend(peer, 8, 1) // satisfy the Irecv in double-wait case
				f(r, peer)
			} else {
				r.Isend(0, 8, 1)
				_ = peer
			}
		}}
		if _, err := Run(quietConfig(2), app); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWaitallMultipleRequests(t *testing.T) {
	k := simpleKernel("w", 1, 50_000, 100)
	app := &testApp{name: "multi", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		n := r.Ranks()
		if r.Rank() == 0 {
			reqs := make([]*Request, 0, 2*(n-1))
			for p := 1; p < n; p++ {
				reqs = append(reqs, r.Isend(p, 2048, 3), r.Irecv(p, 4))
			}
			r.Compute(k)
			r.Waitall(reqs...)
		} else {
			r.Recv(0, 3)
			r.Send(0, 2048, 4)
		}
	}}
	tr, err := Run(quietConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Comms) != 6 { // 3 outbound + 3 inbound
		t.Fatalf("comms = %d", len(tr.Comms))
	}
}

func TestNonblockingOpsNamed(t *testing.T) {
	if trace.MPIIsend.String() != "MPI_Isend" || trace.MPIIrecv.String() != "MPI_Irecv" {
		t.Fatal("op names wrong")
	}
	found := 0
	for _, op := range trace.AllMPIOps() {
		if op == trace.MPIIsend || op == trace.MPIIrecv {
			found++
		}
		if strings.HasPrefix(op.String(), "MPI_Op_") {
			t.Fatalf("unnamed op %d in AllMPIOps", op)
		}
	}
	if found != 2 {
		t.Fatal("nonblocking ops missing from AllMPIOps")
	}
}
