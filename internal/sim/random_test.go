package sim

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/burst"
	"repro/internal/counters"
	"repro/internal/kernels"
	"repro/internal/trace"
)

// randomApp generates a random-but-deadlock-free SPMD program: a sequence
// of steps where every step is either a compute on a random kernel, a
// collective, or a neighbour exchange. All ranks execute the same step
// list (SPMD), so matching is guaranteed.
type randomApp struct {
	ks    []*kernels.Kernel
	steps []func(r *Rank)
}

func (a *randomApp) Name() string               { return "random" }
func (a *randomApp) Kernels() []*kernels.Kernel { return a.ks }
func (a *randomApp) Run(r *Rank) {
	for _, s := range a.steps {
		s(r)
	}
}

func newRandomApp(rng *rand.Rand, nSteps int) *randomApp {
	a := &randomApp{}
	shapes := []counters.Shape{
		counters.Constant(),
		counters.Linear(0.5, 1.5),
		counters.ExpDecay(2, 0.2),
		counters.Sine(0.4, 2),
	}
	for k := 0; k < 3; k++ {
		kn := &kernels.Kernel{
			Name:         fmt.Sprintf("k%d", k),
			ID:           int64(k + 1),
			MeanDuration: trace.Time(100_000 + rng.IntN(2_000_000)),
			NoiseCV:      0.05 * rng.Float64(),
			WorkNoiseCV:  0.05 * rng.Float64(),
		}
		kn.Counters[counters.TotIns] = kernels.CounterSpec{
			Total: 1_000_000 + rng.Int64N(50_000_000),
			Shape: shapes[rng.IntN(len(shapes))],
		}
		kn.Counters[counters.L1DCM] = kernels.CounterSpec{
			Total: rng.Int64N(1_000_000),
			Shape: shapes[rng.IntN(len(shapes))],
		}
		a.ks = append(a.ks, kn)
	}
	for s := 0; s < nSteps; s++ {
		switch rng.IntN(7) {
		case 0, 1, 2:
			k := a.ks[rng.IntN(len(a.ks))]
			a.steps = append(a.steps, func(r *Rank) { r.Compute(k) })
		case 3:
			a.steps = append(a.steps, func(r *Rank) { r.Barrier() })
		case 4:
			bytes := rng.Int64N(1 << 18)
			a.steps = append(a.steps, func(r *Rank) { r.Allreduce(bytes) })
		case 5:
			bytes := 1 + rng.Int64N(1<<17) // crosses the eager threshold both ways
			tag := rng.IntN(100)
			a.steps = append(a.steps, func(r *Rank) {
				next := (r.Rank() + 1) % r.Ranks()
				prev := (r.Rank() + r.Ranks() - 1) % r.Ranks()
				r.Sendrecv(next, bytes, prev, tag, tag)
			})
		case 6:
			it := s
			a.steps = append(a.steps, func(r *Rank) { r.Iteration(it) })
		}
	}
	// Always end with a barrier so every rank's trace closes cleanly.
	a.steps = append(a.steps, func(r *Rank) { r.Barrier() })
	return a
}

// TestRandomAppsProduceValidTraces is the simulator's property test: any
// SPMD program built from the Rank API yields a trace satisfying every
// structural invariant, burst extraction succeeds, and all folded counter
// values stay within their kernel envelopes.
func TestRandomAppsProduceValidTraces(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 777))
		ranks := 1 + rng.IntN(8)
		app := newRandomApp(rng, 5+rng.IntN(40))
		cfg := DefaultConfig(ranks)
		cfg.Seed = uint64(trial)
		cfg.Sampling.Period = trace.Time(100_000 + rng.IntN(5_000_000))
		tr, err := Run(cfg, app)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bursts, err := burst.Extract(tr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, b := range bursts {
			if b.Duration() <= 0 {
				t.Fatalf("trial %d: non-positive burst %+v", trial, b)
			}
			for c := range b.Delta {
				if b.Delta[c] < 0 {
					t.Fatalf("trial %d: negative counter delta %+v", trial, b)
				}
			}
		}
		// Determinism: a second identical run matches event for event.
		tr2, err := Run(cfg, app)
		if err != nil {
			t.Fatalf("trial %d rerun: %v", trial, err)
		}
		if len(tr2.Events) != len(tr.Events) || tr2.Meta.Duration != tr.Meta.Duration {
			t.Fatalf("trial %d: nondeterministic run (%d/%d events, %d/%d ns)",
				trial, len(tr.Events), len(tr2.Events), tr.Meta.Duration, tr2.Meta.Duration)
		}
	}
}
