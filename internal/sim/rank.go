package sim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/counters"
	"repro/internal/kernels"
	"repro/internal/trace"
)

// Rank is the execution context handed to App.Run — the simulated MPI
// process. All methods advance the rank's virtual clock and append records
// to rank-local buffers; none are safe for use from other goroutines.
type Rank struct {
	id  int32
	cfg *Config
	eng *engine
	// rng drives application-level randomness (kernel noise); tickRng
	// drives the sampler clock. Separate streams keep the application's
	// virtual behaviour identical across sampling configurations, so
	// overhead comparisons between runs measure only the observation cost.
	rng     *rand.Rand
	tickRng *rand.Rand
	now     trace.Time
	ctr     counters.Values // absolute counters at `now` (TotCyc derived from time)
	seq     int             // collective sequence number
	tick    trace.Time      // next sampler tick (absolute)
	depth   []uint32        // explicit user-region stack (region ids)
	iter    int             // current iteration (last Iteration marker; 0 before)

	mainRegion uint32

	events  []trace.Event
	samples []trace.Sample
	comms   []trace.Comm
}

func newRank(id int, cfg *Config, eng *engine) *Rank {
	r := &Rank{
		id:      int32(id),
		cfg:     cfg,
		eng:     eng,
		rng:     rand.New(rand.NewPCG(cfg.Seed, uint64(id)+0x9e3779b97f4a7c15)),
		tickRng: rand.New(rand.NewPCG(cfg.Seed^0x5deece66d, uint64(id)+0x2545f4914f6cdd1d)),
	}
	r.mainRegion = eng.intern("main")
	if cfg.Sampling.Period > 0 {
		// Random initial phase decorrelates the per-rank sampling clocks.
		r.tick = trace.Time(r.tickRng.Float64() * float64(cfg.Sampling.Period))
	}
	return r
}

// Rank returns this process's rank id.
func (r *Rank) Rank() int { return int(r.id) }

// Ranks returns the total number of ranks.
func (r *Rank) Ranks() int { return r.cfg.Ranks }

// Now returns the rank's current virtual time.
func (r *Rank) Now() trace.Time { return r.now }

// cycles returns the derived cycle counter at time t.
func (r *Rank) cycles(t trace.Time) int64 {
	return int64(float64(t) * r.cfg.ClockGHz)
}

// snapshot returns the counter values at time t with the cycle counter
// filled in.
func (r *Rank) snapshot(t trace.Time) counters.Values {
	v := r.ctr
	v[counters.TotCyc] = r.cycles(t)
	return v
}

// event appends an instrumentation event at the current time and charges
// the probe overhead. Probes read the hardware counters when they fire, so
// every event carries a snapshot.
func (r *Rank) event(typ trace.EventType, value int64, charged bool) {
	r.events = append(r.events, trace.Event{
		Rank: r.id, Time: r.now, Type: typ, Value: value,
		HasCounters: true, Counters: r.snapshot(r.now),
	})
	if charged {
		r.now += r.cfg.Instr.EventOverhead
	}
}

// nextTickGap draws the jittered gap to the next sampler tick.
func (r *Rank) nextTickGap() trace.Time {
	p := float64(r.cfg.Sampling.Period)
	j := r.cfg.Sampling.Jitter
	if j > 0 {
		p *= 1 + j*(2*r.tickRng.Float64()-1)
	}
	g := trace.Time(p)
	if g < 1 {
		g = 1
	}
	return g
}

// stackWith builds a call stack with the given innermost frame on top of
// the user-region stack and main.
func (r *Rank) stackWith(frames ...uint32) []uint32 {
	st := make([]uint32, 0, len(frames)+len(r.depth)+1)
	st = append(st, frames...)
	for i := len(r.depth) - 1; i >= 0; i-- {
		st = append(st, r.depth[i])
	}
	st = append(st, r.mainRegion)
	return st
}

// sample emits one sampler record at time t with the given stack. The
// caller is responsible for charging Sampling.Overhead where it applies.
func (r *Rank) sample(t trace.Time, stack []uint32) {
	r.samples = append(r.samples, trace.Sample{
		Rank:     r.id,
		Time:     t,
		Counters: r.snapshot(t),
		Stack:    stack,
	})
}

// advanceIdle moves the clock to `to`, firing any sampler ticks that land
// in the interval with the given innermost stack frame and frozen counters.
// Sampling overhead does not extend waiting: the handler steals cycles the
// rank was going to spend blocked anyway. Ticks that became overdue while
// a probe executed fire immediately at the current clock, keeping sample
// times monotone.
func (r *Rank) advanceIdle(to trace.Time, frame uint32) {
	if r.cfg.Sampling.Period > 0 {
		for r.tick < to {
			at := r.tick
			if at < r.now {
				at = r.now
			}
			r.sample(at, r.stackWith(frame))
			r.tick += r.nextTickGap()
		}
	}
	if to > r.now {
		r.now = to
	}
}

// Compute executes one instance of a kernel: it draws the instance's
// duration (imbalance × lognormal noise), accrues every counter along the
// kernel's analytic shapes, and fires any sampler ticks inside the
// interval, each charged with the sampling overhead (which dilates the
// computation exactly as a real signal handler does).
func (r *Rank) Compute(k *kernels.Kernel) {
	imb := k.ImbalanceOf(int(r.id), r.cfg.Ranks)
	noise := 1.0
	if mu, sigma := k.NoiseSigmaMu(); sigma > 0 {
		noise = math.Exp(mu + sigma*r.rng.NormFloat64())
	}
	work := 1.0
	if mu, sigma := k.WorkNoiseSigmaMu(); sigma > 0 {
		work = math.Exp(mu + sigma*r.rng.NormFloat64())
	}
	d := trace.Time(float64(k.MeanDuration) * imb * work * noise)
	if d < 1 {
		d = 1
	}

	// A perturbed instance stalls — no counters accrue — for
	// (Factor−1)×d at normalized position At, slowing its mean rates by
	// 1/Factor without touching totals. Selection is a pure hash of the
	// iteration, so unperturbed instances are bit-identical to a run
	// without perturbation.
	stall, stallAt := trace.Time(0), d
	if pc := &r.cfg.Perturb; pc.enabled() && (pc.Kernel == "" || pc.Kernel == k.Name) && pc.Selected(r.iter) {
		stall = trace.Time(float64(d) * (pc.Factor - 1))
		stallAt = trace.Time(float64(d) * pc.At)
	}
	total := d + stall
	// progress maps wall offset within the instance to compute fraction.
	progress := func(w trace.Time) float64 {
		if stall > 0 && w > stallAt {
			if w < stallAt+stall {
				w = stallAt
			} else {
				w -= stall
			}
		}
		return float64(w) / float64(d)
	}

	var totals counters.Values
	for c := range totals {
		totals[c] = int64(float64(k.TotalOf(counters.Counter(c))) * imb * work)
	}

	if r.cfg.Instr.Oracle {
		r.event(trace.EvOracle, k.ID, false)
	}

	kernelRegion := r.eng.intern(k.Name)
	base := r.ctr
	var done trace.Time // wall time completed inside the instance so far
	if r.cfg.Sampling.Period > 0 {
		for r.tick < r.now+(total-done) {
			at := r.tick
			if at < r.now {
				at = r.now // tick became overdue during a probe
			}
			done += at - r.now
			r.now = at
			u := progress(done)
			for c := range r.ctr {
				cc := counters.Counter(c)
				if cc == counters.TotCyc {
					continue
				}
				r.ctr[c] = base[c] + int64(float64(totals[c])*k.ShapeOf(cc).Integral(u)+0.5)
			}
			var frames []uint32
			region := k.RegionAt(u)
			if region != k.Name {
				frames = []uint32{r.eng.intern(region), kernelRegion}
			} else {
				frames = []uint32{kernelRegion}
			}
			r.sample(at, r.stackWith(frames...))
			r.now += r.cfg.Sampling.Overhead
			r.tick += r.nextTickGap()
		}
	}
	r.now += total - done
	for c := range r.ctr {
		if counters.Counter(c) == counters.TotCyc {
			continue
		}
		r.ctr[c] = base[c] + totals[c]
	}

	if r.cfg.Instr.Oracle {
		r.event(trace.EvOracle, 0, false)
	}
}

// Iteration emits an iteration marker event and makes n the current
// iteration for perturbation selection.
func (r *Rank) Iteration(n int) {
	r.iter = n
	r.event(trace.EvIteration, int64(n), true)
}

// RegionEnter emits an instrumented user-region entry and pushes the
// region onto the rank's stack.
func (r *Rank) RegionEnter(name string) {
	id := r.eng.intern(name)
	r.event(trace.EvRegion, int64(id), true)
	r.depth = append(r.depth, id)
}

// RegionExit pops the current user region and emits the exit event.
func (r *Rank) RegionExit() {
	if len(r.depth) == 0 {
		panic(fmt.Sprintf("sim: rank %d RegionExit without matching RegionEnter", r.id))
	}
	r.depth = r.depth[:len(r.depth)-1]
	r.event(trace.EvRegion, 0, true)
}

// mpiEnter emits the MPI entry event and returns the interned region id of
// the operation (for sampler stacks while blocked inside it).
func (r *Rank) mpiEnter(op trace.MPIOp) uint32 {
	r.event(trace.EvMPI, int64(op), true)
	return r.eng.intern(op.String())
}

func (r *Rank) mpiExit() {
	r.event(trace.EvMPI, 0, true)
}

// Barrier blocks until every rank has entered the same barrier.
func (r *Rank) Barrier() {
	frame := r.mpiEnter(trace.MPIBarrier)
	exit := r.eng.collective(r.nextSeq(), r.now, trace.MPIBarrier, 0)
	r.advanceIdle(exit, frame)
	r.mpiExit()
}

// Allreduce performs a global reduction of the given payload size.
func (r *Rank) Allreduce(bytes int64) {
	frame := r.mpiEnter(trace.MPIAllreduce)
	exit := r.eng.collective(r.nextSeq(), r.now, trace.MPIAllreduce, bytes)
	r.advanceIdle(exit, frame)
	r.mpiExit()
}

// Bcast broadcasts a payload from root (cost model is root-agnostic).
func (r *Rank) Bcast(root int, bytes int64) {
	frame := r.mpiEnter(trace.MPIBcast)
	exit := r.eng.collective(r.nextSeq(), r.now, trace.MPIBcast, bytes)
	r.advanceIdle(exit, frame)
	r.mpiExit()
}

// Reduce performs a rooted reduction (cost model is root-agnostic, like
// Bcast).
func (r *Rank) Reduce(root int, bytes int64) {
	frame := r.mpiEnter(trace.MPIReduce)
	exit := r.eng.collective(r.nextSeq(), r.now, trace.MPIReduce, bytes)
	r.advanceIdle(exit, frame)
	r.mpiExit()
}

// Alltoall performs an all-to-all exchange with the given per-pair payload.
func (r *Rank) Alltoall(bytes int64) {
	frame := r.mpiEnter(trace.MPIAlltoall)
	exit := r.eng.collective(r.nextSeq(), r.now, trace.MPIAlltoall, bytes)
	r.advanceIdle(exit, frame)
	r.mpiExit()
}

func (r *Rank) nextSeq() int {
	s := r.seq
	r.seq++
	return s
}

// Send transmits a message. Sends up to the eager threshold complete after
// the local injection cost; larger messages rendezvous with the receiver.
func (r *Rank) Send(dst int, bytes int64, tag int) {
	r.checkPeer(dst)
	frame := r.mpiEnter(trace.MPISend)
	m := r.sendStart(int32(dst), bytes, int32(tag))
	r.sendFinish(m, frame)
	r.mpiExit()
}

// sendStart posts the message without blocking, returning the handle to
// complete with sendFinish. Splitting the two halves lets Sendrecv post
// its send before blocking in the receive, which is what keeps symmetric
// rendezvous exchanges deadlock-free.
func (r *Rank) sendStart(dst int32, bytes int64, tag int32) *message {
	m := &message{tag: tag, size: bytes, sendTime: r.now}
	if bytes > r.cfg.Network.EagerThreshold {
		m.exitCh = make(chan trace.Time, 1)
	}
	r.eng.post(r.id, dst, m)
	return m
}

// sendFinish blocks until the send completes and advances the clock.
func (r *Rank) sendFinish(m *message, frame uint32) {
	if m.exitCh != nil {
		exit := <-m.exitCh
		r.advanceIdle(exit, frame)
		return
	}
	inject := trace.Time(float64(m.size) / r.cfg.Network.Bandwidth)
	r.advanceIdle(r.now+inject, frame)
}

// Recv blocks until the matching message arrives and advances the clock to
// its arrival. The communication record is written by the receiver, which
// is the first rank to know both endpoints' times.
func (r *Rank) Recv(src int, tag int) {
	r.checkPeer(src)
	frame := r.mpiEnter(trace.MPIRecv)
	r.recvMatched(int32(src), int32(tag), frame, r.now)
	r.mpiExit()
}

// recvMatched completes a receive whose buffer was posted at `ready` (the
// current time for blocking receives; the Irecv time for nonblocking
// ones — which is what lets a rendezvous transfer overlap computation).
// The comm record carries the physical data-arrival time; the rank's
// clock advances to that arrival only if it is still in the future.
func (r *Rank) recvMatched(src int32, tag int32, frame uint32, ready trace.Time) {
	m := r.eng.match(src, r.id, tag)
	var arrival trace.Time
	if m.exitCh != nil {
		// Rendezvous: the transfer starts once both sides are ready.
		start := m.sendTime
		if ready > start {
			start = ready
		}
		arrival = start + r.eng.transferCost(m.size)
		m.exitCh <- arrival
	} else {
		arrival = m.sendTime + r.eng.transferCost(m.size)
	}
	r.comms = append(r.comms, trace.Comm{
		Src: src, Dst: r.id,
		SendTime: m.sendTime, RecvTime: arrival,
		Size: m.size, Tag: tag,
	})
	r.advanceIdle(arrival, frame)
}

// Sendrecv performs the symmetric exchange common in halo swaps: post the
// send, complete the receive, then complete the send, all under a single
// MPI_Sendrecv instrumentation span. Posting before receiving keeps
// symmetric rendezvous exchanges deadlock-free.
func (r *Rank) Sendrecv(dst int, sendBytes int64, src int, recvTag int, tag int) {
	r.checkPeer(dst)
	r.checkPeer(src)
	frame := r.mpiEnter(trace.MPISendRecv)
	m := r.sendStart(int32(dst), sendBytes, int32(tag))
	r.recvMatched(int32(src), int32(recvTag), frame, r.now)
	r.sendFinish(m, frame)
	r.mpiExit()
}

func (r *Rank) checkPeer(peer int) {
	if peer < 0 || peer >= r.cfg.Ranks {
		panic(fmt.Sprintf("sim: rank %d references peer %d outside [0,%d)", r.id, peer, r.cfg.Ranks))
	}
}
