// Package sim is a deterministic discrete-event simulator of message-
// passing parallel applications. It stands in for the paper's real
// substrate (Extrae instrumenting native MPI applications with PAPI
// counters and signal-based sampling), which a Go reproduction cannot
// drive directly: the Go runtime's scheduler and garbage collector would
// perturb any in-process measurement, and native OpenMP/MPI codes are out
// of reach. Instead, applications written against the Rank API execute in
// virtual time; the simulator emits exactly the trace records the real
// tool chain emits — instrumentation events at MPI boundaries, periodic
// samples with hardware-counter snapshots and call stacks, and
// communication records — while also knowing the analytic ground truth of
// every kernel's internal evolution.
//
// Determinism: given the same Config (including Seed) and App, the
// produced trace is bit-for-bit identical across runs. Ranks execute as
// goroutines but interact only through virtual-time rendezvous whose
// results are order-independent (collective exits are maxima over entry
// times; point-to-point matching is FIFO per sender).
package sim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/kernels"
	"repro/internal/trace"
)

// NetworkConfig models the interconnect.
type NetworkConfig struct {
	// Latency is the one-way message latency.
	Latency trace.Time
	// Bandwidth is the link bandwidth in bytes per nanosecond (1.0 = 1 GB/s).
	Bandwidth float64
	// EagerThreshold is the message size (bytes) up to which sends complete
	// without waiting for the receiver (eager protocol); larger messages
	// rendezvous.
	EagerThreshold int64
}

// SamplingConfig models the timer-based sampler.
type SamplingConfig struct {
	// Period is the nominal sampling period; 0 disables sampling.
	Period trace.Time
	// Jitter is the relative uniform jitter applied to each inter-sample
	// gap (0.05 = ±5%), decorrelating the sampling clock from phase
	// boundaries as a free-running OS timer would.
	Jitter float64
	// Overhead is the virtual-time cost charged to the application for
	// taking one sample (signal delivery + unwinding + counter reads).
	Overhead trace.Time
}

// InstrConfig models the instrumentation probes.
type InstrConfig struct {
	// EventOverhead is the virtual-time cost of emitting one
	// instrumentation event (probe entry or exit).
	EventOverhead trace.Time
	// Oracle controls emission of ground-truth EvOracle kernel identity
	// events. They cost nothing and are never consumed by the analysis
	// pipeline — only by tests and accuracy evaluation.
	Oracle bool
}

// PerturbConfig injects a reproducible behavior change into selected
// iterations — the controlled "regression" half of a two-run
// differential experiment. On a selected iteration, every matching
// kernel instance is slowed by inserting a counter-free stall of
// (Factor−1)× its nominal duration at normalized position At inside
// the instance: the instance's mean counter rates drop by 1/Factor and
// the folded rate curves dip around At, which is exactly the signal
// cross-run diffing must localize. Selection is a pure hash of
// (Seed, iteration) — it consumes no simulator randomness, so the
// unperturbed iterations of a perturbed run stay bit-identical to the
// baseline run's.
type PerturbConfig struct {
	// Factor is the slowdown of selected instances (2 = twice as slow);
	// 0 or 1 disables perturbation entirely.
	Factor float64
	// Fraction is the fraction of iterations selected, in (0,1].
	Fraction float64
	// Kernel restricts the perturbation to one kernel name ("" = all).
	Kernel string
	// At is the normalized position inside the instance where the stall
	// is inserted, in [0,1].
	At float64
	// Seed seeds iteration selection, independently of Config.Seed.
	Seed uint64
}

func (p *PerturbConfig) enabled() bool { return p.Factor > 1 && p.Fraction > 0 }

// Selected reports whether iteration n (1-based; 0 = before the first
// marker) is perturbed. It is a pure function of (Seed, n) — every rank
// agrees without consuming any rng stream (splitmix64 finalizer).
func (p *PerturbConfig) Selected(n int) bool {
	if !p.enabled() || n <= 0 {
		return false
	}
	x := p.Seed ^ (uint64(n) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < p.Fraction
}

// Config parameterizes a simulated run.
type Config struct {
	Ranks    int
	Seed     uint64
	ClockGHz float64 // core clock in cycles per nanosecond
	Network  NetworkConfig
	Sampling SamplingConfig
	Instr    InstrConfig
	Perturb  PerturbConfig
}

// DefaultConfig returns a reasonable cluster-node configuration: 2.5 GHz
// cores, 1 µs / 1 GB/s network, 32 KiB eager threshold, 20 ms sampling
// with ±5% jitter and 2 µs per-sample cost, 100 ns per probe event.
func DefaultConfig(ranks int) Config {
	return Config{
		Ranks:    ranks,
		Seed:     1,
		ClockGHz: 2.5,
		Network: NetworkConfig{
			Latency:        1000, // 1 µs
			Bandwidth:      1.0,  // 1 GB/s
			EagerThreshold: 32 << 10,
		},
		Sampling: SamplingConfig{
			Period:   20_000_000, // 20 ms
			Jitter:   0.05,
			Overhead: 2000, // 2 µs
		},
		Instr: InstrConfig{
			EventOverhead: 100,
			Oracle:        true,
		},
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Ranks < 1 {
		return fmt.Errorf("sim: need at least 1 rank, got %d", c.Ranks)
	}
	if c.ClockGHz <= 0 {
		return fmt.Errorf("sim: non-positive clock %g", c.ClockGHz)
	}
	if c.Network.Bandwidth <= 0 {
		return fmt.Errorf("sim: non-positive bandwidth %g", c.Network.Bandwidth)
	}
	if c.Network.Latency < 0 {
		return fmt.Errorf("sim: negative latency %d", c.Network.Latency)
	}
	if c.Sampling.Period < 0 {
		return fmt.Errorf("sim: negative sampling period %d", c.Sampling.Period)
	}
	if c.Sampling.Jitter < 0 || c.Sampling.Jitter >= 1 {
		return fmt.Errorf("sim: sampling jitter %g outside [0,1)", c.Sampling.Jitter)
	}
	if c.Sampling.Overhead < 0 || c.Instr.EventOverhead < 0 {
		return fmt.Errorf("sim: negative overhead")
	}
	if c.Sampling.Period > 0 && c.Sampling.Overhead*2 >= c.Sampling.Period {
		return fmt.Errorf("sim: sampling overhead %d too large for period %d (the sampler would consume the machine)",
			c.Sampling.Overhead, c.Sampling.Period)
	}
	if p := &c.Perturb; p.Factor != 0 {
		if p.Factor < 1 {
			return fmt.Errorf("sim: perturb factor %g below 1 (perturbation only slows instances down)", p.Factor)
		}
		if p.Fraction < 0 || p.Fraction > 1 {
			return fmt.Errorf("sim: perturb fraction %g outside [0,1]", p.Fraction)
		}
		if p.At < 0 || p.At > 1 {
			return fmt.Errorf("sim: perturb position %g outside [0,1]", p.At)
		}
	}
	return nil
}

// App is a simulated parallel application. Run is invoked once per rank,
// concurrently; it must use only the Rank API for inter-rank interaction.
// Kernels must declare every kernel Run computes so the simulator can
// pre-intern region names deterministically and expose ground truth.
type App interface {
	Name() string
	Kernels() []*kernels.Kernel
	Run(r *Rank)
}

// Run executes the application under the configuration and returns the
// assembled, validated trace.
func Run(cfg Config, app App) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ks := app.Kernels()
	for _, k := range ks {
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("sim: app %q: %w", app.Name(), err)
		}
	}

	eng := newEngine(&cfg)
	eng.internFixedRegions(ks)

	ranks := make([]*Rank, cfg.Ranks)
	for i := range ranks {
		ranks[i] = newRank(i, &cfg, eng)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Ranks)
	for _, r := range ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errCh <- fmt.Errorf("sim: rank %d panicked: %v", r.id, p)
				}
			}()
			app.Run(r)
		}(r)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}

	// Assemble the trace deterministically: regions in interning order,
	// then per-rank record streams.
	b := trace.NewBuilder(app.Name(), cfg.Ranks)
	b.SetSeed(cfg.Seed)
	b.SetSamplePeriod(cfg.Sampling.Period)
	b.SetParam("clock_ghz", fmt.Sprintf("%g", cfg.ClockGHz))
	b.SetParam("sample_overhead_ns", fmt.Sprintf("%d", cfg.Sampling.Overhead))
	b.SetParam("event_overhead_ns", fmt.Sprintf("%d", cfg.Instr.EventOverhead))
	if cfg.Perturb.enabled() {
		b.SetParam("perturb_factor", fmt.Sprintf("%g", cfg.Perturb.Factor))
		b.SetParam("perturb_fraction", fmt.Sprintf("%g", cfg.Perturb.Fraction))
		b.SetParam("perturb_at", fmt.Sprintf("%g", cfg.Perturb.At))
		b.SetParam("perturb_seed", fmt.Sprintf("%d", cfg.Perturb.Seed))
		if cfg.Perturb.Kernel != "" {
			b.SetParam("perturb_kernel", cfg.Perturb.Kernel)
		}
	}
	for _, name := range eng.regionNames() {
		b.Region(name)
	}
	for _, r := range ranks {
		for _, e := range r.events {
			if e.HasCounters {
				b.EventC(e.Rank, e.Time, e.Type, e.Value, e.Counters[:])
			} else {
				b.Event(e.Rank, e.Time, e.Type, e.Value)
			}
		}
		for _, s := range r.samples {
			b.Sample(s.Rank, s.Time, s.Counters[:], s.Stack)
		}
		for _, c := range r.comms {
			b.Comm(c.Src, c.Dst, c.SendTime, c.RecvTime, c.Size, c.Tag)
		}
	}
	tr := b.Build()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: produced invalid trace: %w", err)
	}
	return tr, nil
}

// GroundTruth exposes the analytic internal evolution of an app's kernels
// keyed by kernel name, for accuracy evaluation.
func GroundTruth(app App) map[string]*kernels.Kernel {
	m := make(map[string]*kernels.Kernel)
	for _, k := range app.Kernels() {
		m[k.Name] = k
	}
	return m
}

// sortedKernelNames returns kernel names in deterministic order.
func sortedKernelNames(ks []*kernels.Kernel) []string {
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.Name
	}
	sort.Strings(names)
	return names
}
