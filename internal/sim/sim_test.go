package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/kernels"
	"repro/internal/trace"
)

// testApp is a configurable application for simulator tests.
type testApp struct {
	name string
	ks   []*kernels.Kernel
	run  func(r *Rank)
}

func (a *testApp) Name() string               { return a.name }
func (a *testApp) Kernels() []*kernels.Kernel { return a.ks }
func (a *testApp) Run(r *Rank)                { a.run(r) }

// simpleKernel builds a deterministic kernel with a linear instruction
// shape and a fixed instruction total.
func simpleKernel(name string, id int64, dur trace.Time, ins int64) *kernels.Kernel {
	k := &kernels.Kernel{Name: name, ID: id, MeanDuration: dur}
	k.Counters[counters.TotIns] = kernels.CounterSpec{Total: ins, Shape: counters.Linear(1, 3)}
	k.Counters[counters.L1DCM] = kernels.CounterSpec{Total: ins / 100, Shape: counters.ExpDecay(3, 0.2)}
	return k
}

// quietConfig disables sampling noise sources for exact-time assertions.
func quietConfig(ranks int) Config {
	cfg := DefaultConfig(ranks)
	cfg.Sampling.Period = 0
	cfg.Sampling.Overhead = 0
	cfg.Instr.EventOverhead = 0
	return cfg
}

func TestSingleRankComputeCounters(t *testing.T) {
	k := simpleKernel("k", 1, 1_000_000, 5_000_000)
	app := &testApp{name: "t", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		r.Compute(k)
		r.Barrier() // emit at least one MPI event so the trace has structure
	}}
	cfg := quietConfig(1)
	cfg.Sampling.Period = 100_000 // 100 µs → ~10 samples in the kernel
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	samples := tr.SamplesOfRank(0)
	if len(samples) < 5 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	// Each in-kernel sample's instruction count must match the analytic
	// integral of the shape at the sample's position.
	shape := k.ShapeOf(counters.TotIns)
	for _, s := range samples {
		if s.Time >= 1_000_000 {
			continue // after the kernel
		}
		u := float64(s.Time) / 1_000_000
		want := 5_000_000 * shape.Integral(u)
		got := float64(s.Counters[counters.TotIns])
		if math.Abs(got-want) > 1 {
			t.Fatalf("sample at u=%.3f: TOT_INS=%g, want %g", u, got, want)
		}
	}
	// Final counters: last sample during barrier (frozen) carries the full
	// total.
	last := samples[len(samples)-1]
	if last.Time > 1_000_000 && last.Counters[counters.TotIns] != 5_000_000 {
		t.Fatalf("final TOT_INS = %d, want 5000000", last.Counters[counters.TotIns])
	}
}

func TestDeterminism(t *testing.T) {
	k := simpleKernel("k", 1, 500_000, 1_000_000)
	k.NoiseCV = 0.1
	mk := func() App {
		return &testApp{name: "det", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
			for i := 0; i < 5; i++ {
				r.Compute(k)
				r.Allreduce(8)
				next := (r.Rank() + 1) % r.Ranks()
				prev := (r.Rank() + r.Ranks() - 1) % r.Ranks()
				r.Sendrecv(next, 1024, prev, 7, 7)
			}
		}}
	}
	cfg := DefaultConfig(4)
	cfg.Sampling.Period = 50_000
	var bufs [2]bytes.Buffer
	for i := range bufs {
		tr, err := Run(cfg, mk())
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Write(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("two identical runs produced different traces")
	}
}

func TestSeedChangesTrace(t *testing.T) {
	k := simpleKernel("k", 1, 500_000, 1_000_000)
	k.NoiseCV = 0.1
	mk := func() App {
		return &testApp{name: "s", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
			r.Compute(k)
			r.Barrier()
		}}
	}
	cfg := DefaultConfig(2)
	cfg.Sampling.Period = 50_000
	var bufs [2]bytes.Buffer
	for i := range bufs {
		cfg.Seed = uint64(i + 1)
		tr, err := Run(cfg, mk())
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Write(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("different seeds produced identical noisy traces")
	}
}

func TestBarrierSynchronizesToSlowest(t *testing.T) {
	fast := simpleKernel("fast", 1, 100_000, 1000)
	slow := simpleKernel("slow", 2, 900_000, 9000)
	app := &testApp{name: "bar", ks: []*kernels.Kernel{fast, slow}, run: func(r *Rank) {
		if r.Rank() == 0 {
			r.Compute(slow)
		} else {
			r.Compute(fast)
		}
		r.Barrier()
	}}
	cfg := quietConfig(4)
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	// All barrier exits must coincide at slowest-entry + cost.
	var exits []trace.Time
	for _, e := range tr.Events {
		if e.Type == trace.EvMPI && e.Value == 0 {
			exits = append(exits, e.Time)
		}
	}
	if len(exits) != 4 {
		t.Fatalf("barrier exits = %d, want 4", len(exits))
	}
	for _, x := range exits[1:] {
		if x != exits[0] {
			t.Fatalf("barrier exits differ: %v", exits)
		}
	}
	wantCost := trace.Time(2) * cfg.Network.Latency // ceil(log2 4) = 2 stages
	if exits[0] != 900_000+wantCost {
		t.Fatalf("barrier exit = %d, want %d", exits[0], 900_000+wantCost)
	}
}

func TestEagerSendRecvTiming(t *testing.T) {
	k := simpleKernel("w", 1, 50_000, 100)
	app := &testApp{name: "p2p", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 1000, 5)
		} else {
			r.Compute(k) // receiver arrives late
			r.Recv(0, 5)
		}
	}}
	cfg := quietConfig(2)
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Comms) != 1 {
		t.Fatalf("comms = %d, want 1", len(tr.Comms))
	}
	c := tr.Comms[0]
	if c.Src != 0 || c.Dst != 1 || c.Size != 1000 || c.Tag != 5 {
		t.Fatalf("comm = %+v", c)
	}
	if c.SendTime != 0 {
		t.Fatalf("SendTime = %d, want 0", c.SendTime)
	}
	// The comm record carries the physical data arrival:
	// send + latency + size/bw = 0 + 1000 + 1000 = 2000 (the receiver
	// only looked at the buffer at 50 µs, but the data was long there).
	if c.RecvTime != 2000 {
		t.Fatalf("RecvTime = %d, want 2000", c.RecvTime)
	}
}

func TestEagerRecvWaitsForArrival(t *testing.T) {
	k := simpleKernel("w", 1, 50_000, 100)
	app := &testApp{name: "p2p2", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		if r.Rank() == 0 {
			r.Compute(k) // sender is late
			r.Send(1, 1000, 5)
		} else {
			r.Recv(0, 5)
		}
	}}
	cfg := quietConfig(2)
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Comms[0]
	// arrival = 50000 + 1000 (latency) + 1000 (transfer) = 52000
	if c.SendTime != 50_000 || c.RecvTime != 52_000 {
		t.Fatalf("comm times = %d → %d, want 50000 → 52000", c.SendTime, c.RecvTime)
	}
}

func TestRendezvousRingNoDeadlock(t *testing.T) {
	k := simpleKernel("w", 1, 10_000, 100)
	big := int64(1 << 20) // above the eager threshold
	app := &testApp{name: "ring", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		next := (r.Rank() + 1) % r.Ranks()
		prev := (r.Rank() + r.Ranks() - 1) % r.Ranks()
		for i := 0; i < 3; i++ {
			r.Compute(k)
			r.Sendrecv(next, big, prev, 9, 9)
		}
	}}
	cfg := quietConfig(8)
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Comms) != 8*3 {
		t.Fatalf("comms = %d, want 24", len(tr.Comms))
	}
	for _, c := range tr.Comms {
		if c.RecvTime < c.SendTime+cfg.Network.Latency {
			t.Fatalf("rendezvous comm too fast: %+v", c)
		}
	}
}

func TestRendezvousBlocksSender(t *testing.T) {
	k := simpleKernel("w", 1, 100_000, 100)
	app := &testApp{name: "rdv", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 1<<20, 1) // rendezvous: must wait for receiver
			r.Barrier()
		} else {
			r.Compute(k)
			r.Recv(0, 1)
			r.Barrier()
		}
	}}
	cfg := quietConfig(2)
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	// Sender's MPI_Send exit must be at the rendezvous completion, not at
	// time ~0: transfer starts at receiver readiness (100000).
	want := trace.Time(100_000) + cfg.Network.Latency + trace.Time(float64(1<<20)/cfg.Network.Bandwidth)
	var sendExit trace.Time
	ev0 := tr.EventsOfRank(0)
	for i, e := range ev0 {
		if e.Type == trace.EvMPI && e.Value == int64(trace.MPISend) {
			sendExit = ev0[i+1].Time
			break
		}
	}
	if sendExit != want {
		t.Fatalf("send exit = %d, want %d", sendExit, want)
	}
}

func TestCollectiveMismatchFails(t *testing.T) {
	app := &testApp{name: "bad", ks: nil, run: func(r *Rank) {
		if r.Rank() == 0 {
			r.Allreduce(8)
		} else {
			r.Bcast(0, 8)
		}
	}}
	if _, err := Run(quietConfig(2), app); err == nil {
		t.Fatal("collective mismatch not reported")
	} else if !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAppPanicBecomesError(t *testing.T) {
	app := &testApp{name: "boom", ks: nil, run: func(r *Rank) {
		panic("kaboom")
	}}
	if _, err := Run(quietConfig(1), app); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidKernelRejected(t *testing.T) {
	bad := &kernels.Kernel{Name: "", ID: 1, MeanDuration: 10}
	app := &testApp{name: "bad", ks: []*kernels.Kernel{bad}, run: func(r *Rank) {}}
	if _, err := Run(quietConfig(1), app); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	app := &testApp{name: "x", ks: nil, run: func(r *Rank) {}}
	bads := []func(c *Config){
		func(c *Config) { c.Ranks = 0 },
		func(c *Config) { c.ClockGHz = 0 },
		func(c *Config) { c.Network.Bandwidth = 0 },
		func(c *Config) { c.Network.Latency = -1 },
		func(c *Config) { c.Sampling.Period = -1 },
		func(c *Config) { c.Sampling.Jitter = 1 },
		func(c *Config) { c.Sampling.Overhead = -1 },
		func(c *Config) { c.Sampling.Period = 100; c.Sampling.Overhead = 50 },
	}
	for i, mutate := range bads {
		cfg := quietConfig(2)
		mutate(&cfg)
		if _, err := Run(cfg, app); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestOracleEventsPairAndCount(t *testing.T) {
	k := simpleKernel("k", 7, 10_000, 100)
	const iters = 5
	app := &testApp{name: "oracle", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		for i := 0; i < iters; i++ {
			r.Compute(k)
			r.Barrier()
		}
	}}
	cfg := quietConfig(3)
	cfg.Instr.Oracle = true
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	enters, exits := 0, 0
	for _, e := range tr.Events {
		if e.Type != trace.EvOracle {
			continue
		}
		if e.Value == 7 {
			enters++
		} else if e.Value == 0 {
			exits++
		} else {
			t.Fatalf("unexpected oracle value %d", e.Value)
		}
	}
	if enters != 3*iters || exits != 3*iters {
		t.Fatalf("oracle events = %d/%d, want %d/%d", enters, exits, 3*iters, 3*iters)
	}
}

func TestOracleDisabled(t *testing.T) {
	k := simpleKernel("k", 7, 10_000, 100)
	app := &testApp{name: "noor", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		r.Compute(k)
		r.Barrier()
	}}
	cfg := quietConfig(1)
	cfg.Instr.Oracle = false
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.Type == trace.EvOracle {
			t.Fatal("oracle event emitted while disabled")
		}
	}
}

func TestSamplingOverheadDilatesRun(t *testing.T) {
	k := simpleKernel("k", 1, 1_000_000, 1000)
	mk := func() App {
		return &testApp{name: "oh", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
			for i := 0; i < 20; i++ {
				r.Compute(k)
			}
			r.Barrier()
		}}
	}
	base := quietConfig(1)
	trBase, err := Run(base, mk())
	if err != nil {
		t.Fatal(err)
	}
	heavy := quietConfig(1)
	heavy.Sampling.Period = 10_000 // 10 µs: fine-grain
	heavy.Sampling.Overhead = 2_000
	trHeavy, err := Run(heavy, mk())
	if err != nil {
		t.Fatal(err)
	}
	if trHeavy.Meta.Duration <= trBase.Meta.Duration {
		t.Fatalf("sampling overhead did not dilate: %d vs %d", trHeavy.Meta.Duration, trBase.Meta.Duration)
	}
	// Dilation should be roughly nSamples × overhead.
	extra := float64(trHeavy.Meta.Duration - trBase.Meta.Duration)
	want := float64(len(trHeavy.Samples)) * 2000
	if extra < want*0.5 || extra > want*1.5 {
		t.Fatalf("dilation %g, want ≈ %g", extra, want)
	}
}

func TestRegionEventsAndStacks(t *testing.T) {
	k := simpleKernel("k", 1, 100_000, 1000)
	app := &testApp{name: "reg", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		r.RegionEnter("solver")
		r.Compute(k)
		r.RegionExit()
		r.Barrier()
	}}
	cfg := quietConfig(1)
	cfg.Sampling.Period = 10_000
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	var regEnter, regExit bool
	for _, e := range tr.Events {
		if e.Type == trace.EvRegion {
			if e.Value != 0 {
				regEnter = true
				if tr.Meta.RegionName(uint32(e.Value)) != "solver" {
					t.Fatalf("region name = %q", tr.Meta.RegionName(uint32(e.Value)))
				}
			} else {
				regExit = true
			}
		}
	}
	if !regEnter || !regExit {
		t.Fatal("region events missing")
	}
	// In-kernel samples must show [kernel, solver, main].
	found := false
	for _, s := range tr.Samples {
		if s.Time < 100_000 && len(s.Stack) == 3 {
			names := []string{
				tr.Meta.RegionName(s.Stack[0]),
				tr.Meta.RegionName(s.Stack[1]),
				tr.Meta.RegionName(s.Stack[2]),
			}
			if names[0] == "k" && names[1] == "solver" && names[2] == "main" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no sample carries the expected [k, solver, main] stack")
	}
}

func TestRegionExitWithoutEnterFails(t *testing.T) {
	app := &testApp{name: "bad", ks: nil, run: func(r *Rank) {
		r.RegionExit()
	}}
	if _, err := Run(quietConfig(1), app); err == nil {
		t.Fatal("unbalanced RegionExit accepted")
	}
}

func TestKernelRegionSpansInStacks(t *testing.T) {
	k := simpleKernel("k", 1, 1_000_000, 10_000)
	k.Regions = []kernels.RegionSpan{
		{UpTo: 0.5, Name: "first_half"},
		{UpTo: 1, Name: "second_half"},
	}
	app := &testApp{name: "spans", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		r.Compute(k)
		r.Barrier()
	}}
	cfg := quietConfig(1)
	cfg.Sampling.Period = 50_000
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Samples {
		if s.Time >= 1_000_000 || len(s.Stack) < 2 {
			continue
		}
		top := tr.Meta.RegionName(s.Stack[0])
		u := float64(s.Time) / 1_000_000
		want := "first_half"
		if u >= 0.5 {
			want = "second_half"
		}
		// Samples right at the boundary may land either side due to the
		// sampling overhead shifting time; allow a small tolerance band.
		if math.Abs(u-0.5) < 0.02 {
			continue
		}
		if top != want {
			t.Fatalf("sample at u=%.3f has top frame %q, want %q", u, top, want)
		}
	}
}

func TestIterationEvents(t *testing.T) {
	app := &testApp{name: "it", ks: nil, run: func(r *Rank) {
		for i := 1; i <= 3; i++ {
			r.Iteration(i)
			r.Barrier()
		}
	}}
	tr, err := Run(quietConfig(2), app)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, e := range tr.Events {
		if e.Type == trace.EvIteration {
			count++
		}
	}
	if count != 6 {
		t.Fatalf("iteration events = %d, want 6", count)
	}
}

func TestImbalancedKernelDurations(t *testing.T) {
	k := simpleKernel("k", 1, 1_000_000, 1000)
	k.Imbalance = kernels.Linear(1) // last rank does 2×
	app := &testApp{name: "imb", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		r.Compute(k)
		r.Barrier()
	}}
	cfg := quietConfig(4)
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	// First MPI enter per rank is the end of the compute burst.
	enters := map[int32]trace.Time{}
	for _, e := range tr.Events {
		if e.Type == trace.EvMPI && e.Value != 0 {
			if _, ok := enters[e.Rank]; !ok {
				enters[e.Rank] = e.Time
			}
		}
	}
	if enters[0] != 1_000_000 {
		t.Fatalf("rank 0 burst = %d, want 1000000", enters[0])
	}
	if enters[3] != 2_000_000 {
		t.Fatalf("rank 3 burst = %d, want 2000000", enters[3])
	}
}

func TestGroundTruth(t *testing.T) {
	k1 := simpleKernel("a", 1, 10, 1)
	k2 := simpleKernel("b", 2, 10, 1)
	app := &testApp{name: "gt", ks: []*kernels.Kernel{k1, k2}, run: func(r *Rank) {}}
	gt := GroundTruth(app)
	if gt["a"] != k1 || gt["b"] != k2 {
		t.Fatalf("GroundTruth = %v", gt)
	}
}

func TestPeerOutOfRangeFails(t *testing.T) {
	app := &testApp{name: "peer", ks: nil, run: func(r *Rank) {
		r.Send(5, 10, 0)
	}}
	if _, err := Run(quietConfig(2), app); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
}

func TestCyclesTrackWallTime(t *testing.T) {
	k := simpleKernel("k", 1, 1_000_000, 1000)
	app := &testApp{name: "cyc", ks: []*kernels.Kernel{k}, run: func(r *Rank) {
		r.Compute(k)
		r.Barrier()
	}}
	cfg := quietConfig(1)
	cfg.ClockGHz = 2.0
	cfg.Sampling.Period = 100_000
	tr, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Samples {
		want := int64(float64(s.Time) * 2.0)
		if s.Counters[counters.TotCyc] != want {
			t.Fatalf("cycles at %d = %d, want %d", s.Time, s.Counters[counters.TotCyc], want)
		}
	}
}

func TestCollectivesRun(t *testing.T) {
	app := &testApp{name: "coll", ks: nil, run: func(r *Rank) {
		r.Bcast(0, 4096)
		r.Alltoall(512)
		r.Reduce(0, 2048)
		r.Barrier()
	}}
	tr, err := Run(quietConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[trace.MPIOp]int{}
	for _, e := range tr.Events {
		if e.Type == trace.EvMPI && e.Value != 0 {
			ops[trace.MPIOp(e.Value)]++
		}
	}
	if ops[trace.MPIBcast] != 4 || ops[trace.MPIAlltoall] != 4 ||
		ops[trace.MPIReduce] != 4 || ops[trace.MPIBarrier] != 4 {
		t.Fatalf("ops = %v", ops)
	}
}
