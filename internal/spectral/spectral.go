// Package spectral detects an application's periodic structure without
// iteration markers, from the signal perspective the same research group
// used in its companion trace-spectral-analysis work: the trace is
// flattened into a regularly-sampled "useful computation density" signal
// (fraction of ranks computing at each time bin), whose autocorrelation
// peaks at multiples of the iteration period. Marker-free period detection
// lets the folding pipeline segment steady-state iterations in traces of
// applications that were never annotated.
package spectral

import (
	"fmt"
	"math"

	"repro/internal/burst"
	"repro/internal/trace"
)

// Signal is a regularly-sampled scalar time series over a trace.
type Signal struct {
	// Bin is the sampling step (ns per bin).
	Bin trace.Time
	// Values holds one scalar per bin.
	Values []float64
}

// Duration returns the time span the signal covers.
func (s *Signal) Duration() trace.Time { return s.Bin * trace.Time(len(s.Values)) }

// ComputeDensity builds the useful-computation-density signal: for each
// time bin, the fraction of rank-time spent inside computation bursts.
// bins selects the resolution (default 4096).
func ComputeDensity(tr *trace.Trace, bursts []burst.Burst, bins int) (*Signal, error) {
	if tr.Meta.Duration <= 0 {
		return nil, fmt.Errorf("spectral: empty trace")
	}
	if bins <= 0 {
		bins = 4096
	}
	binW := float64(tr.Meta.Duration) / float64(bins)
	if binW < 1 {
		bins = int(tr.Meta.Duration)
		binW = 1
	}
	vals := make([]float64, bins)
	for i := range bursts {
		b := &bursts[i]
		lo := float64(b.Start) / binW
		hi := float64(b.End) / binW
		first := int(lo)
		last := int(hi)
		if first >= bins {
			continue
		}
		if last >= bins {
			last = bins - 1
		}
		if first == last {
			vals[first] += hi - lo
			continue
		}
		vals[first] += float64(first+1) - lo
		for k := first + 1; k < last; k++ {
			vals[k]++
		}
		vals[last] += hi - float64(last)
	}
	// Normalize by rank count: 1.0 = all ranks computing.
	for i := range vals {
		vals[i] /= float64(tr.Meta.Ranks)
	}
	return &Signal{Bin: trace.Time(binW), Values: vals}, nil
}

// Autocorrelation returns the normalized autocorrelation of the signal for
// lags 1..maxLag (index 0 of the result is lag 1). Values are in [-1, 1].
func (s *Signal) Autocorrelation(maxLag int) []float64 {
	n := len(s.Values)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 1 {
		return nil
	}
	mean := 0.0
	for _, v := range s.Values {
		mean += v
	}
	mean /= float64(n)
	var denom float64
	for _, v := range s.Values {
		d := v - mean
		denom += d * d
	}
	out := make([]float64, maxLag)
	if denom == 0 {
		return out
	}
	for lag := 1; lag <= maxLag; lag++ {
		var num float64
		for i := 0; i+lag < n; i++ {
			num += (s.Values[i] - mean) * (s.Values[i+lag] - mean)
		}
		out[lag-1] = num / denom
	}
	return out
}

// Period estimates the dominant period of the signal: the first local
// maximum of the autocorrelation exceeding the threshold (default 0.3),
// refined by preferring the highest peak among its small multiples. It
// returns 0 when no periodicity is found.
func (s *Signal) Period(threshold float64) trace.Time {
	if threshold == 0 {
		threshold = 0.3
	}
	ac := s.Autocorrelation(len(s.Values) / 2)
	if len(ac) < 3 {
		return 0
	}
	best := 0
	for lag := 1; lag < len(ac)-1; lag++ {
		v := ac[lag]
		if v >= threshold && v >= ac[lag-1] && v >= ac[lag+1] {
			best = lag + 1 // ac index is lag-1
			break
		}
	}
	if best == 0 {
		return 0
	}
	// The first peak can be a harmonic when the signal has strong
	// sub-structure; check whether half the detected lag is also a peak of
	// comparable height (then the true period is the smaller one) — and
	// conversely prefer 2× when it is distinctly stronger.
	peak := func(lag int) float64 {
		if lag-1 < 0 || lag-1 >= len(ac) {
			return -1
		}
		return ac[lag-1]
	}
	if h := best / 2; h >= 2 && peak(h) > 0.9*peak(best) && peak(h) >= threshold {
		best = h
	} else if d := best * 2; d-1 < len(ac) && peak(d) > 1.1*peak(best) {
		best = d
	}
	return trace.Time(best) * s.Bin
}

// DetectIterations estimates the iteration period of a trace without
// markers: build the compute-density signal from its bursts and find the
// autocorrelation period. It also returns the implied iteration count.
func DetectIterations(tr *trace.Trace, bursts []burst.Burst) (period trace.Time, count int, err error) {
	sig, err := ComputeDensity(tr, bursts, 4096)
	if err != nil {
		return 0, 0, err
	}
	period = sig.Period(0)
	if period <= 0 {
		return 0, 0, nil
	}
	count = int(math.Round(float64(tr.Meta.Duration) / float64(period)))
	return period, count, nil
}
