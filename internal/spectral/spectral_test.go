package spectral

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/burst"
	"repro/internal/sim"
	"repro/internal/structure"
	"repro/internal/trace"
)

func TestComputeDensityKnownSignal(t *testing.T) {
	b := trace.NewBuilder("s", 2)
	b.Event(0, 1000, trace.EvIteration, 1) // pins duration to 1000
	tr := b.Build()
	bursts := []burst.Burst{
		{Rank: 0, Start: 0, End: 500},   // rank 0 computes the first half
		{Rank: 1, Start: 250, End: 750}, // rank 1 the middle half
	}
	sig, err := ComputeDensity(tr, bursts, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Bins of 250 ns; density = busy-rank fraction.
	want := []float64{0.5, 1.0, 0.5, 0}
	for i, w := range want {
		if math.Abs(sig.Values[i]-w) > 1e-9 {
			t.Fatalf("bin %d = %g, want %g (all: %v)", i, sig.Values[i], w, sig.Values)
		}
	}
	if sig.Duration() != 1000 {
		t.Fatalf("duration = %d", sig.Duration())
	}
}

func TestComputeDensityPartialBins(t *testing.T) {
	b := trace.NewBuilder("s", 1)
	b.Event(0, 100, trace.EvIteration, 1)
	tr := b.Build()
	bursts := []burst.Burst{{Rank: 0, Start: 10, End: 30}} // within bin 0 [0,50)
	sig, err := ComputeDensity(tr, bursts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sig.Values[0]-0.4) > 1e-9 || sig.Values[1] != 0 {
		t.Fatalf("values = %v", sig.Values)
	}
}

func TestComputeDensityErrors(t *testing.T) {
	b := trace.NewBuilder("s", 1)
	tr := b.Build() // zero duration
	if _, err := ComputeDensity(tr, nil, 8); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestAutocorrelationPeriodicSignal(t *testing.T) {
	// Square wave with period 20 bins.
	sig := &Signal{Bin: 10, Values: make([]float64, 400)}
	for i := range sig.Values {
		if i%20 < 10 {
			sig.Values[i] = 1
		}
	}
	ac := sig.Autocorrelation(100)
	// Strong positive peak at lag 20, strong negative at lag 10.
	if ac[19] < 0.8 {
		t.Fatalf("ac[lag 20] = %g", ac[19])
	}
	if ac[9] > -0.8 {
		t.Fatalf("ac[lag 10] = %g", ac[9])
	}
	if p := sig.Period(0); p != 200 { // 20 bins × 10 ns
		t.Fatalf("period = %d, want 200", p)
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	flat := &Signal{Bin: 1, Values: []float64{1, 1, 1, 1, 1, 1, 1, 1}}
	ac := flat.Autocorrelation(4)
	for _, v := range ac {
		if v != 0 {
			t.Fatalf("flat signal autocorrelation = %v", ac)
		}
	}
	if p := flat.Period(0); p != 0 {
		t.Fatalf("flat period = %d", p)
	}
	tiny := &Signal{Bin: 1, Values: []float64{1, 2}}
	if p := tiny.Period(0); p != 0 {
		t.Fatalf("tiny period = %d", p)
	}
	if got := tiny.Autocorrelation(0); got != nil {
		t.Fatalf("zero maxLag = %v", got)
	}
}

func TestDetectIterationsDegenerate(t *testing.T) {
	// Empty trace → error.
	b := trace.NewBuilder("e", 1)
	if _, _, err := DetectIterations(b.Build(), nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	// Aperiodic trace → period 0, no error.
	b2 := trace.NewBuilder("a", 1)
	b2.Event(0, 10_000, trace.EvIteration, 1)
	tr := b2.Build()
	bursts := []burst.Burst{{Rank: 0, Start: 0, End: 3000}}
	period, count, err := DetectIterations(tr, bursts)
	if err != nil {
		t.Fatal(err)
	}
	if period != 0 || count != 0 {
		t.Fatalf("aperiodic detection = %d, %d", period, count)
	}
}

// TestDetectIterationsMatchesMarkers: marker-free spectral detection
// agrees with the ground-truth iteration markers on every app.
func TestDetectIterationsMatchesMarkers(t *testing.T) {
	for _, name := range []string{"stencil", "nbody", "cg"} {
		app, err := apps.ByName(name, 60)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sim.Run(apps.DefaultTraceConfig(8), app)
		if err != nil {
			t.Fatal(err)
		}
		bursts, err := burst.Extract(tr)
		if err != nil {
			t.Fatal(err)
		}
		period, count, err := DetectIterations(tr, bursts)
		if err != nil {
			t.Fatal(err)
		}
		if period <= 0 {
			t.Fatalf("%s: no period detected", name)
		}
		truth := structure.Iterations(tr)
		rel := math.Abs(float64(period)-truth.MeanDuration) / truth.MeanDuration
		if rel > 0.1 {
			t.Fatalf("%s: spectral period %.2f ms vs marker mean %.2f ms (%.1f%% off)",
				name, float64(period)/1e6, truth.MeanDuration/1e6, 100*rel)
		}
		if count < 50 || count > 70 {
			t.Fatalf("%s: implied count %d, want ≈ 60", name, count)
		}
	}
}
