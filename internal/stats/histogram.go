package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-range, equal-width histogram. Values outside the
// configured range are clamped into the first or last bin so that the total
// count always equals the number of observations.
type Histogram struct {
	lo, hi float64
	counts []int64
	total  int64
}

// NewHistogram creates a histogram over [lo, hi) with the given number of
// equal-width bins. It panics if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic(fmt.Sprintf("stats: histogram needs at least 1 bin, got %d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram range [%g, %g)", lo, hi))
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int64, bins)}
}

// Add records one observation of x.
func (h *Histogram) Add(x float64) {
	h.counts[h.binOf(x)]++
	h.total++
}

func (h *Histogram) binOf(x float64) int {
	if math.IsNaN(x) || x < h.lo {
		return 0
	}
	f := (x - h.lo) / (h.hi - h.lo) * float64(len(h.counts))
	if f >= float64(len(h.counts)) {
		return len(h.counts) - 1
	}
	return int(f)
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the count in bin i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Total returns the total number of observations.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + (float64(i)+0.5)*w
}

// Mode returns the center of the most populated bin; ties resolve to the
// lowest bin. It returns 0 when the histogram is empty.
func (h *Histogram) Mode() float64 {
	if h.total == 0 {
		return 0
	}
	best := 0
	for i, c := range h.counts {
		if c > h.counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// ASCII renders a compact textual bar chart, one row per bin, suitable for
// terminal reports. width is the number of characters of the longest bar.
func (h *Histogram) ASCII(width int) string {
	if width < 1 {
		width = 40
	}
	var maxC int64 = 1
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		bar := int(float64(c) / float64(maxC) * float64(width))
		fmt.Fprintf(&b, "%12.4g |%-*s| %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
