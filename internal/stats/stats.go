// Package stats provides small, allocation-conscious statistical helpers
// used throughout the analysis pipeline: online moments, order statistics,
// histograms, robust scale estimates and correlation.
//
// All functions operate on float64 slices and never modify their inputs
// unless explicitly documented (functions with a "InPlace" suffix).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the unbiased sample variance of xs (denominator n-1).
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it.
// It panics on empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks (the "R-7" definition used by most
// statistics packages). It panics on empty input and clamps q to [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	return quantileSorted(tmp, q)
}

// QuantileSorted is like Quantile but requires xs to be sorted ascending,
// avoiding the copy and sort.
func QuantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	return quantileSorted(xs, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MAD returns the median absolute deviation of xs scaled by 1.4826 so that
// it is a consistent estimator of the standard deviation for normal data.
// It panics on empty input.
func MAD(xs []float64) float64 {
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return 1.4826 * Median(dev)
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
// It returns 0 when the slices differ in length, are shorter than 2, or
// either has zero variance.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Online accumulates count, mean and variance incrementally using
// Welford's algorithm. The zero value is ready to use.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations added.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean, or 0 before any observation.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running unbiased sample variance, or 0 when n < 2.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the minimum observation, or 0 before any observation.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the maximum observation, or 0 before any observation.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.max
}

// Merge folds the observations of other into o, as if every observation
// added to other had been added to o. The Chan et al. parallel update is
// used so no individual samples are required.
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n := o.n + other.n
	delta := other.mean - o.mean
	o.m2 += other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(n)
	o.mean += delta * float64(other.n) / float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n = n
}
