package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// population variance is 4; sample variance is 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEq(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance single = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd Median = %v, want 3", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even Median = %v, want 2.5", got)
	}
	// Median must not modify its input.
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatalf("Median modified input: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("Quantile singleton = %v, want 7", got)
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for q := 0.0; q <= 1.0; q += 0.05 {
		if a, b := Quantile(xs, q), QuantileSorted(sorted, q); a != b {
			t.Fatalf("q=%v: Quantile=%v QuantileSorted=%v", q, a, b)
		}
	}
}

func TestMADGaussianConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = 3 + 2*rng.NormFloat64()
	}
	mad := MAD(xs)
	if math.Abs(mad-2) > 0.1 {
		t.Fatalf("MAD of N(3,2) = %v, want ~2", mad)
	}
}

func TestMADRobustToOutliers(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1e9}
	if mad := MAD(xs); mad != 0 {
		t.Fatalf("MAD = %v, want 0 (outlier must not inflate it)", mad)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v, want -1", got)
	}
	if got := Correlation(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Fatalf("zero-variance correlation = %v, want 0", got)
	}
	if got := Correlation(xs, []float64{1}); got != 0 {
		t.Fatalf("length-mismatch correlation = %v, want 0", got)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 10
		o.Add(xs[i])
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-10) {
		t.Fatalf("online mean %v != batch %v", o.Mean(), Mean(xs))
	}
	if !almostEq(o.Variance(), Variance(xs), 1e-10) {
		t.Fatalf("online var %v != batch %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Fatalf("online min/max mismatch")
	}
	if o.N() != 1000 {
		t.Fatalf("N = %d", o.N())
	}
}

func TestStdDevMatchesVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, want := StdDev(xs), math.Sqrt(Variance(xs)); got != want {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if got, want := o.StdDev(), math.Sqrt(o.Variance()); got != want {
		t.Fatalf("Online.StdDev = %v, want %v", got, want)
	}
}

func TestOnlineMergeEdgeCases(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Add(3)
	snapshot := a
	a.Merge(&b) // merging empty changes nothing
	if a != snapshot {
		t.Fatal("merge with empty changed the accumulator")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 || b.Min() != 1 || b.Max() != 3 {
		t.Fatalf("merge into empty = %+v", b)
	}
}

func TestOnlineZeroValue(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.Min() != 0 || o.Max() != 0 {
		t.Fatal("zero-value Online must report zeros")
	}
}

func TestOnlineMergeProperty(t *testing.T) {
	// Merging two accumulators must equal accumulating the concatenation.
	f := func(a, b []float64) bool {
		var oa, ob, oc Online
		// Skip pathological magnitudes where the sum of squares overflows
		// float64 — both batch and online formulas break down there.
		for _, x := range append(append([]float64(nil), a...), b...) {
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				return true
			}
		}
		for _, x := range a {
			oa.Add(x)
			oc.Add(x)
		}
		for _, x := range b {
			ob.Add(x)
			oc.Add(x)
		}
		oa.Merge(&ob)
		if oa.N() != oc.N() {
			return false
		}
		if oa.N() == 0 {
			return true
		}
		return almostEq(oa.Mean(), oc.Mean(), 1e-6) && almostEq(oa.Variance(), oc.Variance(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, 10, 15, -3} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
	// clamped: -3 → bin0, 10 and 15 → bin4
	if h.Count(0) != 3 { // 0, 1.9, -3
		t.Fatalf("bin0 = %d, want 3", h.Count(0))
	}
	if h.Count(4) != 3 { // 9.99, 10, 15
		t.Fatalf("bin4 = %d, want 3", h.Count(4))
	}
	if h.Bins() != 5 {
		t.Fatalf("Bins = %d", h.Bins())
	}
}

func TestHistogramBinCenterAndMode(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if c := h.BinCenter(0); c != 1 {
		t.Fatalf("BinCenter(0) = %v, want 1", c)
	}
	if h.Mode() != 0 {
		t.Fatalf("empty Mode = %v, want 0", h.Mode())
	}
	h.Add(7)
	h.Add(7.5)
	h.Add(1)
	if m := h.Mode(); m != 7 {
		t.Fatalf("Mode = %v, want 7", m)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramTotalEqualsAdds(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(-1, 1, 7)
		n := 0
		for _, v := range vals {
			h.Add(v)
			n++
		}
		var sum int64
		for i := 0; i < h.Bins(); i++ {
			sum += h.Count(i)
		}
		return h.Total() == int64(n) && sum == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramASCII(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(3)
	h.Add(3.5)
	s := h.ASCII(10)
	if s == "" {
		t.Fatal("empty ASCII output")
	}
	if got := h.ASCII(0); got == "" {
		t.Fatal("ASCII with width<1 should use default width")
	}
}
