// Package structure detects the temporal structure of an application from
// its clustered bursts: the per-rank sequence of phases, the repeating
// loop body (period detection on the cluster-id sequence — the discrete
// counterpart of the spectral trace analysis this line of work also
// published), and iteration statistics from iteration marker events.
// Folding assumes a repetitive application; this package is how the
// pipeline verifies that assumption and reports what the repetition looks
// like.
package structure

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/burst"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Sequence is one rank's time-ordered phase sequence.
type Sequence struct {
	Rank     int32
	Clusters []int        // cluster id per burst, in time order
	Starts   []trace.Time // burst start times, parallel to Clusters
}

// Sequences groups clustered bursts into per-rank sequences. Noise bursts
// (cluster 0) are skipped: they are debris, not structure.
func Sequences(bursts []burst.Burst) []Sequence {
	byRank := map[int32][]int{}
	for i := range bursts {
		if bursts[i].Cluster == 0 {
			continue
		}
		byRank[bursts[i].Rank] = append(byRank[bursts[i].Rank], i)
	}
	ranks := make([]int32, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	out := make([]Sequence, 0, len(ranks))
	for _, r := range ranks {
		idx := byRank[r]
		sort.Slice(idx, func(a, b int) bool { return bursts[idx[a]].Start < bursts[idx[b]].Start })
		s := Sequence{Rank: r}
		for _, i := range idx {
			s.Clusters = append(s.Clusters, bursts[i].Cluster)
			s.Starts = append(s.Starts, bursts[i].Start)
		}
		out = append(out, s)
	}
	return out
}

// MatchFraction returns the fraction of positions where seq agrees with
// itself shifted by lag — the discrete autocorrelation used for period
// detection. It returns 0 for lags outside (0, len(seq)).
func MatchFraction(seq []int, lag int) float64 {
	n := len(seq) - lag
	if lag <= 0 || n <= 0 {
		return 0
	}
	match := 0
	for i := 0; i < n; i++ {
		if seq[i] == seq[i+lag] {
			match++
		}
	}
	return float64(match) / float64(n)
}

// Period finds the smallest lag p with MatchFraction ≥ threshold,
// scanning lags up to half the sequence length. It returns 0 when the
// sequence is not periodic at the threshold. A threshold of 0 defaults to
// 0.8 — loose enough that occasional structural interruptions (an I/O
// episode every N iterations, a dropped noise burst) don't mask the
// dominant loop body.
func Period(seq []int, threshold float64) int {
	if threshold == 0 {
		threshold = 0.8
	}
	for p := 1; p <= len(seq)/2; p++ {
		if MatchFraction(seq, p) >= threshold {
			return p
		}
	}
	return 0
}

// LoopBody returns the representative repeating unit of a p-periodic
// sequence: the majority cluster id at each position modulo p.
func LoopBody(seq []int, p int) []int {
	if p <= 0 || len(seq) == 0 {
		return nil
	}
	counts := make([]map[int]int, p)
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for i, c := range seq {
		counts[i%p][c]++
	}
	body := make([]int, p)
	for i, m := range counts {
		best, bestN := 0, -1
		for c, n := range m {
			if n > bestN || (n == bestN && c < best) {
				best, bestN = c, n
			}
		}
		body[i] = best
	}
	return body
}

// Loop summarizes the detected repetition of one rank's sequence.
type Loop struct {
	Rank    int32
	Period  int   // 0 = no repetition detected
	Body    []int // representative unit (len = Period)
	Repeats int   // how many times the body repeats (len/Period)
	Match   float64
}

// DetectLoops runs period detection on every rank's sequence.
func DetectLoops(seqs []Sequence) []Loop {
	out := make([]Loop, 0, len(seqs))
	for _, s := range seqs {
		l := Loop{Rank: s.Rank}
		if p := Period(s.Clusters, 0); p > 0 {
			l.Period = p
			l.Body = LoopBody(s.Clusters, p)
			l.Repeats = len(s.Clusters) / p
			l.Match = MatchFraction(s.Clusters, p)
		}
		out = append(out, l)
	}
	return out
}

// String renders a loop like "[1 2] ×200 (match 99.5%)".
func (l Loop) String() string {
	if l.Period == 0 {
		return fmt.Sprintf("rank %d: no repetition detected", l.Rank)
	}
	parts := make([]string, len(l.Body))
	for i, c := range l.Body {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return fmt.Sprintf("rank %d: [%s] ×%d (match %.1f%%)",
		l.Rank, strings.Join(parts, " "), l.Repeats, 100*l.Match)
}

// SPMDScore quantifies how consistently the ranks execute the same phase
// sequence: each rank's sequence is compared position-wise against the
// longest sequence at the best alignment within ±8 positions (small
// offsets are measurement artifacts — a trace-window cut or a dropped
// noise burst shifts everything downstream — not structural divergence),
// and the mean agreement is returned. 1 means perfectly SPMD; values well
// below 1 indicate MPMD structure or rank-dependent control flow, both of
// which weaken the folding assumption that a cluster's instances are
// interchangeable.
func SPMDScore(seqs []Sequence) float64 {
	if len(seqs) <= 1 {
		return 1
	}
	ref := seqs[0].Clusters
	for _, s := range seqs[1:] {
		if len(s.Clusters) > len(ref) {
			ref = s.Clusters
		}
	}
	if len(ref) == 0 {
		return 1
	}
	const maxShift = 8
	var total float64
	for _, s := range seqs {
		best := 0
		for shift := -maxShift; shift <= maxShift; shift++ {
			m := 0
			for i, c := range s.Clusters {
				if j := i + shift; j >= 0 && j < len(ref) && ref[j] == c {
					m++
				}
			}
			if m > best {
				best = m
			}
		}
		total += float64(best) / float64(len(ref))
	}
	return total / float64(len(seqs))
}

// IterationStats summarizes the main-loop iterations seen through
// EvIteration markers.
type IterationStats struct {
	// Count is the number of complete iterations (per rank; ranks must
	// agree for a valid SPMD trace).
	Count int
	// MeanDuration and CV describe the per-iteration wall time in ns.
	MeanDuration float64
	CV           float64
	// RanksAgree is false when ranks emitted different marker counts.
	RanksAgree bool
}

// Iterations extracts iteration statistics from a trace's EvIteration
// markers. Iteration k spans marker k to marker k+1 on each rank; the
// last marker's span ends at the trace end and is excluded from duration
// statistics.
func Iterations(tr *trace.Trace) IterationStats {
	marks := make(map[int32][]trace.Time)
	for _, e := range tr.Events {
		if e.Type == trace.EvIteration {
			marks[e.Rank] = append(marks[e.Rank], e.Time)
		}
	}
	return IterationsFromMarks(marks)
}

// IterationsFromMarks computes iteration statistics from per-rank
// EvIteration timestamps, the form a streaming consumer accumulates.
// Ranks are visited in sorted order so the floating-point duration
// statistics are deterministic regardless of map insertion history.
func IterationsFromMarks(marks map[int32][]trace.Time) IterationStats {
	st := IterationStats{RanksAgree: true}
	if len(marks) == 0 {
		return st
	}
	ranks := make([]int32, 0, len(marks))
	for r := range marks {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	var durs []float64
	count := -1
	for _, r := range ranks {
		ts := marks[r]
		if count == -1 {
			count = len(ts)
		} else if len(ts) != count {
			st.RanksAgree = false
			if len(ts) < count {
				count = len(ts)
			}
		}
		for i := 1; i < len(ts); i++ {
			durs = append(durs, float64(ts[i]-ts[i-1]))
		}
	}
	st.Count = count
	if len(durs) > 0 {
		st.MeanDuration = stats.Mean(durs)
		if st.MeanDuration > 0 {
			st.CV = stats.StdDev(durs) / st.MeanDuration
		}
	}
	return st
}
