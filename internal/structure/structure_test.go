package structure

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestMatchFraction(t *testing.T) {
	seq := []int{1, 2, 1, 2, 1, 2}
	if got := MatchFraction(seq, 2); got != 1 {
		t.Fatalf("lag 2 = %g", got)
	}
	if got := MatchFraction(seq, 1); got != 0 {
		t.Fatalf("lag 1 = %g", got)
	}
	if MatchFraction(seq, 0) != 0 || MatchFraction(seq, 6) != 0 || MatchFraction(seq, 9) != 0 {
		t.Fatal("invalid lags must return 0")
	}
}

func TestPeriodDetection(t *testing.T) {
	// Period 3 with one corrupted element.
	seq := []int{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 9, 3, 1, 2, 3, 1, 2, 3}
	if p := Period(seq, 0.85); p != 3 {
		t.Fatalf("period = %d, want 3", p)
	}
	// Strictly random-ish sequence: no period.
	if p := Period([]int{1, 2, 3, 4, 5, 6, 7, 8}, 0); p != 0 {
		t.Fatalf("aperiodic sequence got period %d", p)
	}
	// Constant sequence: period 1.
	if p := Period([]int{5, 5, 5, 5, 5, 5}, 0); p != 1 {
		t.Fatalf("constant sequence period = %d", p)
	}
	if p := Period(nil, 0); p != 0 {
		t.Fatalf("empty period = %d", p)
	}
}

func TestLoopBodyMajority(t *testing.T) {
	seq := []int{1, 2, 1, 2, 1, 9, 1, 2} // one corruption at position 5
	body := LoopBody(seq, 2)
	if len(body) != 2 || body[0] != 1 || body[1] != 2 {
		t.Fatalf("body = %v", body)
	}
	if LoopBody(seq, 0) != nil || LoopBody(nil, 2) != nil {
		t.Fatal("degenerate LoopBody should be nil")
	}
}

func TestSequencesAndLoops(t *testing.T) {
	var bursts []burst.Burst
	// rank 0: 1 2 1 2 ... ; rank 1: 1 2 ... ; noise interleaved.
	for i := 0; i < 20; i++ {
		bursts = append(bursts, burst.Burst{
			Rank: 0, Start: trace.Time(i * 100), End: trace.Time(i*100 + 50),
			Cluster: 1 + i%2,
		})
		bursts = append(bursts, burst.Burst{
			Rank: 1, Start: trace.Time(i * 100), End: trace.Time(i*100 + 50),
			Cluster: 1 + i%2,
		})
	}
	bursts = append(bursts, burst.Burst{Rank: 0, Start: 5, End: 6, Cluster: 0}) // noise
	seqs := Sequences(bursts)
	if len(seqs) != 2 {
		t.Fatalf("sequences = %d", len(seqs))
	}
	if len(seqs[0].Clusters) != 20 {
		t.Fatalf("rank0 sequence length = %d (noise not skipped?)", len(seqs[0].Clusters))
	}
	loops := DetectLoops(seqs)
	for _, l := range loops {
		if l.Period != 2 || l.Repeats != 10 || l.Match != 1 {
			t.Fatalf("loop = %+v", l)
		}
		if !strings.Contains(l.String(), "[1 2] ×10") {
			t.Fatalf("loop string = %q", l.String())
		}
	}
	empty := Loop{Rank: 3}
	if !strings.Contains(empty.String(), "no repetition") {
		t.Fatalf("empty loop string = %q", empty.String())
	}
}

func TestSPMDScore(t *testing.T) {
	perfect := []Sequence{
		{Rank: 0, Clusters: []int{1, 2, 1, 2}},
		{Rank: 1, Clusters: []int{1, 2, 1, 2}},
	}
	if s := SPMDScore(perfect); s != 1 {
		t.Fatalf("perfect score = %g", s)
	}
	// One rank diverges at half the positions.
	mixed := []Sequence{
		{Rank: 0, Clusters: []int{1, 2, 1, 2}},
		{Rank: 1, Clusters: []int{1, 3, 1, 3}},
	}
	if s := SPMDScore(mixed); math.Abs(s-0.75) > 1e-12 {
		t.Fatalf("mixed score = %g, want 0.75", s)
	}
	// Length mismatch counts as disagreement on the tail.
	ragged := []Sequence{
		{Rank: 0, Clusters: []int{1, 1, 1, 1}},
		{Rank: 1, Clusters: []int{1, 1}},
	}
	if s := SPMDScore(ragged); math.Abs(s-0.75) > 1e-12 {
		t.Fatalf("ragged score = %g, want 0.75", s)
	}
	if s := SPMDScore(nil); s != 1 {
		t.Fatalf("empty score = %g", s)
	}
	if s := SPMDScore([]Sequence{{Rank: 0}}); s != 1 {
		t.Fatalf("no-burst score = %g", s)
	}
}

func TestIterationsFromMarkers(t *testing.T) {
	b := trace.NewBuilder("it", 2)
	for r := int32(0); r < 2; r++ {
		for i := 0; i < 5; i++ {
			b.Event(r, trace.Time(i*1000), trace.EvIteration, int64(i+1))
		}
	}
	tr := b.Build()
	st := Iterations(tr)
	if st.Count != 5 || !st.RanksAgree {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanDuration != 1000 || st.CV != 0 {
		t.Fatalf("durations = %+v", st)
	}
}

func TestIterationsDisagree(t *testing.T) {
	b := trace.NewBuilder("it", 2)
	b.Event(0, 0, trace.EvIteration, 1)
	b.Event(0, 100, trace.EvIteration, 2)
	b.Event(1, 0, trace.EvIteration, 1)
	tr := b.Build()
	st := Iterations(tr)
	if st.RanksAgree {
		t.Fatal("disagreement not flagged")
	}
	if st.Count != 1 {
		t.Fatalf("count = %d, want min across ranks", st.Count)
	}
}

func TestIterationsEmpty(t *testing.T) {
	b := trace.NewBuilder("it", 1)
	st := Iterations(b.Build())
	if st.Count != 0 || st.MeanDuration != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

// TestStructureOnSimulatedApps: the full chain — simulate, cluster,
// detect loops — recovers each app's program structure.
func TestStructureOnSimulatedApps(t *testing.T) {
	wantPeriod := map[string]int{
		"stencil": 2, // pack, sweep (slivers are filtered)
		"nbody":   2, // forces, integrate
		"cg":      2, // spmv, axpy+precond
	}
	for _, app := range apps.All(40) {
		tr, err := sim.Run(apps.DefaultTraceConfig(4), app)
		if err != nil {
			t.Fatal(err)
		}
		all, err := burst.Extract(tr)
		if err != nil {
			t.Fatal(err)
		}
		kept, _ := burst.Filter{MinDuration: 50_000}.Apply(all)
		cluster.ClusterBursts(kept, cluster.Config{UseIPC: true})
		seqs := Sequences(kept)
		if len(seqs) != 4 {
			t.Fatalf("%s: sequences = %d", app.Name(), len(seqs))
		}
		loops := DetectLoops(seqs)
		for _, l := range loops {
			if l.Period != wantPeriod[app.Name()] {
				t.Fatalf("%s rank %d: period = %d, want %d (body %v)",
					app.Name(), l.Rank, l.Period, wantPeriod[app.Name()], l.Body)
			}
			if l.Match < 0.9 {
				t.Fatalf("%s: weak match %.2f", app.Name(), l.Match)
			}
		}
		ist := Iterations(tr)
		if ist.Count != 40 || !ist.RanksAgree {
			t.Fatalf("%s: iterations = %+v", app.Name(), ist)
		}
		if ist.CV > 0.25 {
			t.Fatalf("%s: iteration CV %.2f implausibly high", app.Name(), ist.CV)
		}
		if math.IsNaN(ist.MeanDuration) || ist.MeanDuration <= 0 {
			t.Fatalf("%s: mean iteration duration %v", app.Name(), ist.MeanDuration)
		}
	}
}
