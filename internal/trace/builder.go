package trace

import (
	"fmt"

	"repro/internal/counters"
)

// Builder accumulates per-rank record streams during trace generation and
// assembles them into a sorted, validated Trace. A Builder is not safe for
// concurrent use; the simulator is sequential by design.
type Builder struct {
	meta    Metadata
	events  []Event
	samples []Sample
	comms   []Comm

	lastEventTime  map[int32]Time
	lastSampleTime map[int32]Time
	lastEvCounters map[int32]counterSnapshot
	lastSmCounters map[int32]counterSnapshot
	nextRegion     uint32
	regionIDs      map[string]uint32
}

type counterSnapshot struct {
	valid bool
	v     counters.Values
}

// NewBuilder creates a Builder for a run with the given application name
// and rank count.
func NewBuilder(app string, ranks int) *Builder {
	if ranks < 1 {
		panic(fmt.Sprintf("trace: invalid rank count %d", ranks))
	}
	return &Builder{
		meta: Metadata{
			App:     app,
			Ranks:   ranks,
			Regions: make(map[uint32]string),
			Params:  make(map[string]string),
		},
		lastEventTime:  make(map[int32]Time),
		lastSampleTime: make(map[int32]Time),
		lastEvCounters: make(map[int32]counterSnapshot),
		lastSmCounters: make(map[int32]counterSnapshot),
		nextRegion:     1, // id 0 reserved: "unresolved"
		regionIDs:      make(map[string]uint32),
	}
}

// SetSamplePeriod records the nominal sampler period in the metadata.
func (b *Builder) SetSamplePeriod(p Time) { b.meta.SamplePeriod = p }

// SetSeed records the generator seed in the metadata.
func (b *Builder) SetSeed(seed uint64) { b.meta.Seed = seed }

// SetParam records a free-form generator parameter.
func (b *Builder) SetParam(key, value string) { b.meta.Params[key] = value }

// Region interns a region name and returns its id. Repeated calls with the
// same name return the same id.
func (b *Builder) Region(name string) uint32 {
	if id, ok := b.regionIDs[name]; ok {
		return id
	}
	id := b.nextRegion
	b.nextRegion++
	b.regionIDs[name] = id
	b.meta.Regions[id] = name
	return id
}

// Event appends an instrumentation event without counters. Events of one
// rank must be appended in non-decreasing time order.
func (b *Builder) Event(rank int32, t Time, typ EventType, value int64) {
	b.checkRank(rank)
	if last, ok := b.lastEventTime[rank]; ok && t < last {
		panic(fmt.Sprintf("trace: rank %d event at %d before previous event at %d", rank, t, last))
	}
	b.lastEventTime[rank] = t
	b.events = append(b.events, Event{Rank: rank, Time: t, Type: typ, Value: value})
}

// EventC appends an instrumentation event carrying a counter snapshot, as
// a probe that reads the hardware counters produces. The rank's counter
// stream (events and samples combined, in emission order) must be
// monotone non-decreasing.
func (b *Builder) EventC(rank int32, t Time, typ EventType, value int64, vals []int64) {
	b.checkRank(rank)
	if last, ok := b.lastEventTime[rank]; ok && t < last {
		panic(fmt.Sprintf("trace: rank %d event at %d before previous event at %d", rank, t, last))
	}
	b.lastEventTime[rank] = t
	e := Event{Rank: rank, Time: t, Type: typ, Value: value, HasCounters: true}
	if len(vals) > len(e.Counters) {
		panic(fmt.Sprintf("trace: %d counter values exceed capacity %d", len(vals), len(e.Counters)))
	}
	prev := b.lastEvCounters[rank]
	for i, v := range vals {
		if prev.valid && v < prev.v[i] {
			panic(fmt.Sprintf("trace: rank %d counter %d decreased: %d < %d", rank, i, v, prev.v[i]))
		}
		e.Counters[i] = v
		prev.v[i] = v
	}
	prev.valid = true
	b.lastEvCounters[rank] = prev
	b.events = append(b.events, e)
}

// Sample appends a sampler record. Samples of one rank must be appended in
// non-decreasing time order with non-decreasing counters.
func (b *Builder) Sample(rank int32, t Time, vals []int64, stack []uint32) {
	b.checkRank(rank)
	if last, ok := b.lastSampleTime[rank]; ok && t < last {
		panic(fmt.Sprintf("trace: rank %d sample at %d before previous sample at %d", rank, t, last))
	}
	b.lastSampleTime[rank] = t
	var s Sample
	s.Rank = rank
	s.Time = t
	if len(vals) > len(s.Counters) {
		panic(fmt.Sprintf("trace: %d counter values exceed capacity %d", len(vals), len(s.Counters)))
	}
	prev := b.lastSmCounters[rank]
	for i, v := range vals {
		if prev.valid && v < prev.v[i] {
			panic(fmt.Sprintf("trace: rank %d counter %d decreased: %d < %d", rank, i, v, prev.v[i]))
		}
		s.Counters[i] = v
		prev.v[i] = v
	}
	prev.valid = true
	b.lastSmCounters[rank] = prev
	if len(stack) > 0 {
		s.Stack = append([]uint32(nil), stack...)
	}
	b.samples = append(b.samples, s)
}

// Comm appends a point-to-point communication record.
func (b *Builder) Comm(src, dst int32, sendTime, recvTime Time, size int64, tag int32) {
	b.checkRank(src)
	b.checkRank(dst)
	if recvTime < sendTime {
		panic(fmt.Sprintf("trace: comm recv %d before send %d", recvTime, sendTime))
	}
	b.comms = append(b.comms, Comm{Src: src, Dst: dst, SendTime: sendTime, RecvTime: recvTime, Size: size, Tag: tag})
}

func (b *Builder) checkRank(rank int32) {
	if rank < 0 || int(rank) >= b.meta.Ranks {
		panic(fmt.Sprintf("trace: rank %d out of range [0, %d)", rank, b.meta.Ranks))
	}
}

// Build finalizes the trace: computes duration, sorts records and returns
// the assembled Trace. The Builder must not be used afterwards.
func (b *Builder) Build() *Trace {
	var end Time
	for _, e := range b.events {
		if e.Time > end {
			end = e.Time
		}
	}
	for _, s := range b.samples {
		if s.Time > end {
			end = s.Time
		}
	}
	for _, c := range b.comms {
		if c.RecvTime > end {
			end = c.RecvTime
		}
	}
	b.meta.Duration = end
	tr := &Trace{Meta: b.meta, Events: b.events, Samples: b.samples, Comms: b.comms}
	tr.Sort()
	return tr
}
