package trace

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/counters"
	"repro/internal/parallel"
)

// ErrBlockFull reports an append to a ColBlock that already holds Cap()
// rows. Callers drain the block (send it downstream, or iterate it) and
// Reset before appending more.
var ErrBlockFull = errors.New("trace: column block full")

// ErrColumnMismatch reports a ColBlock whose parallel columns do not all
// cover the rows an operation needs — the result of tampering with the
// exported column slices. Appends and row reads validate against it and
// return the error instead of indexing out of range.
var ErrColumnMismatch = errors.New("trace: column block length mismatch")

// ColBlock is a fixed-capacity structure-of-arrays batch of records of
// one Kind. Where a []Record stores an array of structs, a ColBlock
// stores parallel columns — one contiguous slice per field — so the hot
// consumers (burst extraction, fold bin accumulation, k-d tree bulk
// load) scan cache-line-friendly columns instead of pointer-striding
// 150-byte structs. Column backing arrays are carved from the
// internal/parallel scratch pools, so a Reset/Release'd block recycles
// its memory instead of re-allocating per batch.
//
// Only rows [0, Len()) are valid. All rows share the block's Kind; the
// columns of the other kinds are present but unused. Per-kind column
// usage:
//
//   - KindEvent: Times, Ranks, Types, Values, Flags (0 = no counters,
//     1 = Ctrs row valid), Ctrs
//   - KindSample: Times, Ranks, Ctrs, and the CSR stack storage
//     StackOff/Frames (row i's frames are Frames[StackOff[i]:StackOff[i+1]])
//   - KindComm: Times (send), Recvs, Ranks (source), Dsts, Sizes, Tags
//
// A ColBlock is not safe for concurrent use.
type ColBlock struct {
	// Times holds the per-row primary timestamp (event time, sample
	// time, or comm send time) as int64 nanoseconds.
	Times []int64
	// Ranks holds the per-row rank (comm rows: source rank).
	Ranks []int32
	// Types holds event types (KindEvent only).
	Types []uint8
	// Values holds event values (KindEvent only).
	Values []int64
	// Flags holds per-event counter presence: 0 = none, 1 = the Ctrs row
	// is a valid snapshot (KindEvent only).
	Flags []uint8
	// Ctrs holds one column per hardware counter; Ctrs[c][i] is counter
	// c of row i (KindEvent rows with Flags[i] == 1, and all KindSample
	// rows).
	Ctrs [counters.NumCounters][]int64
	// Recvs holds comm receive times (KindComm only).
	Recvs []int64
	// Dsts holds comm destination ranks (KindComm only).
	Dsts []int32
	// Sizes holds comm message sizes (KindComm only).
	Sizes []int64
	// Tags holds comm message tags (KindComm only).
	Tags []int32
	// StackOff is the CSR offset column for sample stacks: row i's
	// frames span Frames[StackOff[i]:StackOff[i+1]]. len(StackOff) is
	// Cap()+1 and StackOff[Len()] is always len(Frames).
	StackOff []int32
	// Frames is the shared frame arena all sample stacks index into.
	Frames []uint32

	kind     Kind
	n        int
	capacity int
	a64      []int64 // arena backing Times/Values/Recvs/Sizes/Ctrs
	a32      []int32 // arena backing Ranks/Dsts/Tags/StackOff
	a8       []uint8 // arena backing Types/Flags
}

// NewColBlock allocates a block able to hold up to capacity rows of any
// kind, carving its columns from the parallel scratch pools. Release
// returns the backing memory to the pools.
func NewColBlock(capacity int) *ColBlock {
	if capacity < 1 {
		capacity = 1
	}
	b := &ColBlock{capacity: capacity}
	nc := int(counters.NumCounters)
	b.a64 = parallel.GetInt64(capacity * (4 + nc))
	b.a32 = parallel.GetInt32(capacity*4 + 1)
	b.a8 = parallel.GetUint8(capacity * 2)

	b.Times = b.a64[0:capacity:capacity]
	b.Values = b.a64[capacity : 2*capacity : 2*capacity]
	b.Recvs = b.a64[2*capacity : 3*capacity : 3*capacity]
	b.Sizes = b.a64[3*capacity : 4*capacity : 4*capacity]
	for c := 0; c < nc; c++ {
		lo := (4 + c) * capacity
		b.Ctrs[c] = b.a64[lo : lo+capacity : lo+capacity]
	}
	b.Ranks = b.a32[0:capacity:capacity]
	b.Dsts = b.a32[capacity : 2*capacity : 2*capacity]
	b.Tags = b.a32[2*capacity : 3*capacity : 3*capacity]
	b.StackOff = b.a32[3*capacity : 4*capacity+1 : 4*capacity+1]
	b.Types = b.a8[0:capacity:capacity]
	b.Flags = b.a8[capacity : 2*capacity : 2*capacity]
	b.Frames = parallel.GetUint32(capacity)[:0]
	return b
}

// Kind returns the record kind the block currently holds.
func (b *ColBlock) Kind() Kind { return b.kind }

// Len returns the number of valid rows.
func (b *ColBlock) Len() int { return b.n }

// Cap returns the row capacity the block was allocated with.
func (b *ColBlock) Cap() int { return b.capacity }

// Reset empties the block and re-types it to hold records of kind k.
// Column memory is retained for reuse.
func (b *ColBlock) Reset(k Kind) {
	b.kind = k
	b.n = 0
	b.Frames = b.Frames[:0]
	if len(b.StackOff) > 0 {
		b.StackOff[0] = 0
	}
}

// Release returns the block's column memory to the parallel pools and
// zeroes the block. The block (and any column slice taken from it) must
// not be used afterwards.
func (b *ColBlock) Release() {
	if b.a64 != nil {
		parallel.PutInt64(b.a64)
	}
	if b.a32 != nil {
		parallel.PutInt32(b.a32)
	}
	if b.a8 != nil {
		parallel.PutUint8(b.a8)
	}
	if b.Frames != nil {
		parallel.PutUint32(b.Frames)
	}
	*b = ColBlock{}
}

// room validates that one more row of kind k fits: the block must hold
// kind k (or be empty), have spare capacity, and every column the kind
// uses must still cover the new row. It returns ErrBlockFull or
// ErrColumnMismatch instead of letting an append index out of range.
func (b *ColBlock) room(k Kind) error {
	if b.n == 0 {
		b.kind = k
	} else if b.kind != k {
		return fmt.Errorf("trace: appending %v record to %v block", k, b.kind)
	}
	if b.n >= b.capacity {
		return ErrBlockFull
	}
	need := b.n + 1
	if len(b.Times) < need || len(b.Ranks) < need {
		return fmt.Errorf("%w: Times/Ranks shorter than %d rows", ErrColumnMismatch, need)
	}
	switch k {
	case KindEvent:
		if len(b.Types) < need || len(b.Values) < need || len(b.Flags) < need {
			return fmt.Errorf("%w: event columns shorter than %d rows", ErrColumnMismatch, need)
		}
		for c := range b.Ctrs {
			if len(b.Ctrs[c]) < need {
				return fmt.Errorf("%w: counter column %d shorter than %d rows", ErrColumnMismatch, c, need)
			}
		}
	case KindSample:
		for c := range b.Ctrs {
			if len(b.Ctrs[c]) < need {
				return fmt.Errorf("%w: counter column %d shorter than %d rows", ErrColumnMismatch, c, need)
			}
		}
		if len(b.StackOff) < need+1 {
			return fmt.Errorf("%w: StackOff shorter than %d offsets", ErrColumnMismatch, need+1)
		}
	case KindComm:
		if len(b.Recvs) < need || len(b.Dsts) < need || len(b.Sizes) < need || len(b.Tags) < need {
			return fmt.Errorf("%w: comm columns shorter than %d rows", ErrColumnMismatch, need)
		}
	}
	return nil
}

// AppendEvent appends an event row. It returns ErrBlockFull when the
// block is at capacity and ErrColumnMismatch when the columns have been
// shortened below what the row needs.
func (b *ColBlock) AppendEvent(e *Event) error {
	if err := b.room(KindEvent); err != nil {
		return err
	}
	i := b.n
	b.Times[i] = int64(e.Time)
	b.Ranks[i] = e.Rank
	b.Types[i] = uint8(e.Type)
	b.Values[i] = e.Value
	if e.HasCounters {
		b.Flags[i] = 1
		for c := range b.Ctrs {
			b.Ctrs[c][i] = e.Counters[c]
		}
	} else {
		b.Flags[i] = 0
		for c := range b.Ctrs {
			b.Ctrs[c][i] = 0
		}
	}
	b.n = i + 1
	return nil
}

// AppendSample appends a sample row, copying its stack frames into the
// block's frame arena. Errors are as for AppendEvent.
func (b *ColBlock) AppendSample(s *Sample) error {
	if err := b.room(KindSample); err != nil {
		return err
	}
	i := b.n
	b.Times[i] = int64(s.Time)
	b.Ranks[i] = s.Rank
	for c := range b.Ctrs {
		b.Ctrs[c][i] = s.Counters[c]
	}
	b.growFrames(len(s.Stack))
	b.Frames = append(b.Frames, s.Stack...)
	b.StackOff[i+1] = int32(len(b.Frames))
	b.n = i + 1
	return nil
}

// AppendComm appends a communication row. Errors are as for AppendEvent.
func (b *ColBlock) AppendComm(c *Comm) error {
	if err := b.room(KindComm); err != nil {
		return err
	}
	i := b.n
	b.Times[i] = int64(c.SendTime)
	b.Recvs[i] = int64(c.RecvTime)
	b.Ranks[i] = c.Src
	b.Dsts[i] = c.Dst
	b.Sizes[i] = c.Size
	b.Tags[i] = c.Tag
	b.n = i + 1
	return nil
}

// AppendRecord appends rec to the block, dispatching on its kind.
func (b *ColBlock) AppendRecord(rec *Record) error {
	switch rec.Kind {
	case KindEvent:
		return b.AppendEvent(&rec.Event)
	case KindSample:
		return b.AppendSample(&rec.Sample)
	case KindComm:
		return b.AppendComm(&rec.Comm)
	}
	return fmt.Errorf("trace: append of unknown record kind %d", rec.Kind)
}

// RecordAt reconstructs row i as a Record — the bridge back from the
// columnar to the row representation, used by tests and by consumers
// that need an occasional full record. A sample's Stack aliases the
// block's frame arena (capacity-capped, so appends cannot clobber it)
// and is nil when the stack is empty, matching the row decoder.
func (b *ColBlock) RecordAt(i int, rec *Record) error {
	if i < 0 || i >= b.n {
		return fmt.Errorf("trace: block row %d out of range [0, %d)", i, b.n)
	}
	if err := b.checkCols(); err != nil {
		return err
	}
	rec.Kind = b.kind
	switch b.kind {
	case KindEvent:
		e := &rec.Event
		*e = Event{
			Rank:  b.Ranks[i],
			Time:  Time(b.Times[i]),
			Type:  EventType(b.Types[i]),
			Value: b.Values[i],
		}
		if b.Flags[i] != 0 {
			e.HasCounters = true
			for c := range b.Ctrs {
				e.Counters[c] = b.Ctrs[c][i]
			}
		}
	case KindSample:
		s := &rec.Sample
		*s = Sample{Rank: b.Ranks[i], Time: Time(b.Times[i])}
		for c := range b.Ctrs {
			s.Counters[c] = b.Ctrs[c][i]
		}
		lo, hi := b.StackOff[i], b.StackOff[i+1]
		if hi > lo {
			s.Stack = b.Frames[lo:hi:hi]
		}
	case KindComm:
		rec.Comm = Comm{
			Src:      b.Ranks[i],
			Dst:      b.Dsts[i],
			SendTime: Time(b.Times[i]),
			RecvTime: Time(b.Recvs[i]),
			Size:     b.Sizes[i],
			Tag:      b.Tags[i],
		}
	}
	return nil
}

// checkCols validates that every column the block's kind uses covers all
// n valid rows.
func (b *ColBlock) checkCols() error {
	if len(b.Times) < b.n || len(b.Ranks) < b.n {
		return fmt.Errorf("%w: Times/Ranks shorter than %d rows", ErrColumnMismatch, b.n)
	}
	switch b.kind {
	case KindEvent:
		if len(b.Types) < b.n || len(b.Values) < b.n || len(b.Flags) < b.n {
			return fmt.Errorf("%w: event columns shorter than %d rows", ErrColumnMismatch, b.n)
		}
		for c := range b.Ctrs {
			if len(b.Ctrs[c]) < b.n {
				return fmt.Errorf("%w: counter column %d shorter than %d rows", ErrColumnMismatch, c, b.n)
			}
		}
	case KindSample:
		for c := range b.Ctrs {
			if len(b.Ctrs[c]) < b.n {
				return fmt.Errorf("%w: counter column %d shorter than %d rows", ErrColumnMismatch, c, b.n)
			}
		}
		if len(b.StackOff) < b.n+1 {
			return fmt.Errorf("%w: StackOff shorter than %d offsets", ErrColumnMismatch, b.n+1)
		}
	case KindComm:
		if len(b.Recvs) < b.n || len(b.Dsts) < b.n || len(b.Sizes) < b.n || len(b.Tags) < b.n {
			return fmt.Errorf("%w: comm columns shorter than %d rows", ErrColumnMismatch, b.n)
		}
	}
	return nil
}

// Validate checks the block's structural invariants: all used columns
// cover Len() rows, and for sample blocks the CSR stack offsets are
// monotone and within the frame arena.
func (b *ColBlock) Validate() error {
	if b.n < 0 || b.n > b.capacity {
		return fmt.Errorf("trace: block length %d outside [0, %d]", b.n, b.capacity)
	}
	if err := b.checkCols(); err != nil {
		return err
	}
	if b.kind == KindSample && b.n > 0 {
		if b.StackOff[0] != 0 {
			return fmt.Errorf("%w: StackOff[0] = %d, want 0", ErrColumnMismatch, b.StackOff[0])
		}
		for i := 0; i < b.n; i++ {
			lo, hi := b.StackOff[i], b.StackOff[i+1]
			if lo > hi || int(hi) > len(b.Frames) {
				return fmt.Errorf("%w: StackOff[%d:%d] = [%d, %d] outside frame arena of %d",
					ErrColumnMismatch, i, i+1, lo, hi, len(b.Frames))
			}
		}
	}
	return nil
}

// growFrames ensures the frame arena has room for need more frames,
// re-carving a larger pooled slice when necessary.
func (b *ColBlock) growFrames(need int) {
	if len(b.Frames)+need <= cap(b.Frames) {
		return
	}
	want := len(b.Frames) + need
	if w := 2 * cap(b.Frames); w > want {
		want = w
	}
	nf := parallel.GetUint32(want)[:len(b.Frames)]
	copy(nf, b.Frames)
	old := b.Frames
	b.Frames = nf
	parallel.PutUint32(old)
}

// BlockSource adapts any row Source into a block producer: NextBlock
// fills a ColBlock with consecutive same-kind records. When the
// underlying source is a *StreamReader the records are decoded straight
// into the block's columns with no intermediate Record at all.
type BlockSource struct {
	src     Source
	pending Record
	held    bool
	done    bool
}

// NewBlockSource wraps src in a BlockSource.
func NewBlockSource(src Source) *BlockSource {
	return &BlockSource{src: src}
}

// Meta returns the underlying source's metadata.
func (bs *BlockSource) Meta() *Metadata { return bs.src.Meta() }

// NextBlock fills blk with the next run of same-kind records, resetting
// it first. It returns io.EOF only for an empty block — a partially
// filled block at end of stream is returned with a nil error, and the
// following call reports io.EOF. Any other error aborts the stream.
func (bs *BlockSource) NextBlock(blk *ColBlock) error {
	if sr, ok := bs.src.(*StreamReader); ok {
		return sr.NextBlock(blk)
	}
	// Empty the block up front so a recycled block never carries stale
	// rows out of an EOF or error return.
	blk.Reset(blk.kind)
	if bs.done {
		return io.EOF
	}
	if !bs.held {
		if err := bs.src.Next(&bs.pending); err != nil {
			if err == io.EOF {
				bs.done = true
				return io.EOF
			}
			return err
		}
		bs.held = true
	}
	blk.Reset(bs.pending.Kind)
	for {
		if bs.pending.Kind != blk.Kind() || blk.Len() >= blk.Cap() {
			return nil // pending record opens the next block
		}
		if err := blk.AppendRecord(&bs.pending); err != nil {
			return err
		}
		bs.held = false
		if err := bs.src.Next(&bs.pending); err != nil {
			if err == io.EOF {
				bs.done = true
				if blk.Len() > 0 {
					return nil
				}
				return io.EOF
			}
			return err
		}
		bs.held = true
	}
}
