package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// colFeaturedTrace builds a small trace exercising every record shape:
// events with and without counters, samples with and without stacks,
// and comms.
func colFeaturedTrace(t testing.TB) *Trace {
	t.Helper()
	b := NewBuilder("colblock", 2)
	b.SetSamplePeriod(1000)
	rA := b.Region("solve")
	rB := b.Region("main")
	b.Event(0, 0, EvIteration, 1)
	b.EventC(0, 10, EvMPI, int64(MPIBarrier), []int64{50, 100, 2, 1, 10})
	b.Event(1, 12, EvMPI, int64(MPIBarrier))
	b.EventC(0, 20, EvMPI, 0, []int64{50, 120, 2, 1, 10})
	b.Event(1, 25, EvMPI, 0)
	b.Sample(0, 500, []int64{100, 200, 5, 1, 50}, []uint32{rA, rB})
	b.Sample(1, 700, []int64{90, 180, 3, 1, 40}, nil)
	b.Sample(0, 1500, []int64{150, 300, 7, 2, 70}, []uint32{rA})
	b.Comm(0, 1, 800, 850, 4096, 7)
	b.Comm(1, 0, 900, 960, 128, 8)
	return b.Build()
}

// collectRows drains src record-at-a-time.
func collectRows(t *testing.T, src Source) []Record {
	t.Helper()
	var out []Record
	var rec Record
	for {
		err := src.Next(&rec)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, normRecord(&rec))
	}
}

// normRecord deep-copies rec's active variant into a fresh Record so
// comparisons ignore stale storage in the inactive variants (Source is
// allowed to reuse them).
func normRecord(rec *Record) Record {
	out := Record{Kind: rec.Kind}
	switch rec.Kind {
	case KindEvent:
		out.Event = rec.Event
	case KindSample:
		out.Sample = rec.Sample
		out.Sample.Stack = append([]uint32(nil), rec.Sample.Stack...)
		if len(out.Sample.Stack) == 0 {
			out.Sample.Stack = nil
		}
	case KindComm:
		out.Comm = rec.Comm
	}
	return out
}

// collectBlocks drains bs block-at-a-time through blocks of capacity
// blockCap, reconstructing rows with RecordAt. Every block is validated
// before use.
func collectBlocks(t *testing.T, bs *BlockSource, blockCap int) []Record {
	t.Helper()
	blk := NewColBlock(blockCap)
	defer blk.Release()
	var out []Record
	for {
		err := bs.NextBlock(blk)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("NextBlock: %v", err)
		}
		if err := blk.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		for i := 0; i < blk.Len(); i++ {
			var rec Record
			if err := blk.RecordAt(i, &rec); err != nil {
				t.Fatalf("RecordAt(%d): %v", i, err)
			}
			out = append(out, normRecord(&rec))
		}
	}
}

// TestColBlockRoundTrip checks that records pushed through a BlockSource
// (over an in-memory trace) reconstruct exactly, across block capacities
// that do and do not divide the section sizes.
func TestColBlockRoundTrip(t *testing.T) {
	tr := colFeaturedTrace(t)
	want := collectRows(t, NewTraceSource(tr))
	for _, capacity := range []int{1, 2, 3, 64} {
		got := collectBlocks(t, NewBlockSource(NewTraceSource(tr)), capacity)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cap %d: block round trip diverged from row iteration", capacity)
		}
	}
}

// TestStreamReaderNextBlock checks that the strict decode-into-block
// path yields exactly the rows the record-at-a-time decoder yields.
func TestStreamReaderNextBlock(t *testing.T) {
	tr := colFeaturedTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	srRow, err := NewStreamReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	want := collectRows(t, srRow)

	for _, capacity := range []int{1, 3, 256} {
		srCol, err := NewStreamReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		got := collectBlocks(t, NewBlockSource(srCol), capacity)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cap %d: columnar decode diverged from row decode", capacity)
		}
	}
}

// TestStreamReaderNextBlockLenient checks that the lenient block path
// salvages exactly the rows the lenient row path salvages — including
// identical DecodeStats — on truncated and bit-flipped input.
func TestStreamReaderNextBlockLenient(t *testing.T) {
	tr := colFeaturedTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	damaged := [][]byte{enc}
	for _, frac := range []int{30, 55, 80, 95} {
		damaged = append(damaged, enc[:len(enc)*frac/100])
	}
	for _, pos := range []int{len(enc) / 2, len(enc) * 2 / 3, len(enc) - 5} {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0x40
		damaged = append(damaged, mut)
	}

	for di, data := range damaged {
		srRow, err := NewStreamReaderMode(bytes.NewReader(data), Lenient)
		if err != nil {
			continue // header damage is fatal in both paths
		}
		want := collectRows(t, srRow)
		srCol, err := NewStreamReaderMode(bytes.NewReader(data), Lenient)
		if err != nil {
			t.Fatalf("input %d: row header decoded but columnar failed: %v", di, err)
		}
		got := collectBlocks(t, NewBlockSource(srCol), 3)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("input %d: lenient columnar rows diverged from row path", di)
		}
		if srRow.Stats() != srCol.Stats() {
			t.Fatalf("input %d: DecodeStats diverged: row %+v, columnar %+v",
				di, srRow.Stats(), srCol.Stats())
		}
	}
}

// TestColBlockColumnMismatch locks the satellite fix: a block whose
// parallel columns were shortened must reject appends and row reads with
// ErrColumnMismatch instead of indexing out of range.
func TestColBlockColumnMismatch(t *testing.T) {
	ev := Event{Rank: 1, Time: 10, Type: EvMPI, Value: 3}
	sm := Sample{Rank: 0, Time: 20, Stack: []uint32{1}}
	cm := Comm{Src: 0, Dst: 1, SendTime: 5, RecvTime: 9, Size: 64, Tag: 2}

	tamper := []struct {
		name string
		kind Kind
		mod  func(b *ColBlock)
	}{
		{"times", KindEvent, func(b *ColBlock) { b.Times = b.Times[:0] }},
		{"ranks", KindSample, func(b *ColBlock) { b.Ranks = b.Ranks[:1] }},
		{"flags", KindEvent, func(b *ColBlock) { b.Flags = b.Flags[:1] }},
		{"values", KindEvent, func(b *ColBlock) { b.Values = nil }},
		{"ctrs", KindSample, func(b *ColBlock) { b.Ctrs[2] = b.Ctrs[2][:1] }},
		{"stackoff", KindSample, func(b *ColBlock) { b.StackOff = b.StackOff[:1] }},
		{"recvs", KindComm, func(b *ColBlock) { b.Recvs = nil }},
		{"tags", KindComm, func(b *ColBlock) { b.Tags = b.Tags[:1] }},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			b := NewColBlock(8)
			defer b.Release()
			b.Reset(tc.kind)
			appendOne := func() error {
				switch tc.kind {
				case KindEvent:
					return b.AppendEvent(&ev)
				case KindSample:
					return b.AppendSample(&sm)
				default:
					return b.AppendComm(&cm)
				}
			}
			if err := appendOne(); err != nil {
				t.Fatalf("append to fresh block: %v", err)
			}
			tc.mod(b)
			if err := appendOne(); !errors.Is(err, ErrColumnMismatch) {
				t.Fatalf("append to tampered block: got %v, want ErrColumnMismatch", err)
			}
			if err := b.Validate(); !errors.Is(err, ErrColumnMismatch) {
				// Tampering that still covers the existing row is legal for
				// Validate; only appends must fail. Times/Ranks/StackOff cuts
				// below the row count must be caught though.
				if tc.name == "times" || tc.name == "stackoff" {
					t.Fatalf("Validate after %s cut: got %v, want ErrColumnMismatch", tc.name, err)
				}
			}
		})
	}
}

// TestColBlockFullAndKind covers the remaining append guards: capacity
// exhaustion and kind mixing.
func TestColBlockFullAndKind(t *testing.T) {
	b := NewColBlock(2)
	defer b.Release()
	ev := Event{Rank: 0, Time: 1}
	if err := b.AppendEvent(&ev); err != nil {
		t.Fatal(err)
	}
	sm := Sample{Rank: 0, Time: 2}
	if err := b.AppendSample(&sm); err == nil {
		t.Fatal("appending a sample to an event block succeeded")
	}
	if err := b.AppendEvent(&ev); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendEvent(&ev); !errors.Is(err, ErrBlockFull) {
		t.Fatalf("append past capacity: got %v, want ErrBlockFull", err)
	}
	if got := b.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	b.Reset(KindSample)
	if b.Len() != 0 || b.Kind() != KindSample {
		t.Fatalf("Reset left Len=%d Kind=%v", b.Len(), b.Kind())
	}
	if err := b.AppendSample(&sm); err != nil {
		t.Fatalf("append after Reset: %v", err)
	}
	var rec Record
	if err := b.RecordAt(1, &rec); err == nil {
		t.Fatal("RecordAt past Len succeeded")
	}
}

// TestColBlockFrameArenaGrowth checks that deep stacks overflow the
// initial frame arena correctly: the CSR offsets stay consistent and all
// frames survive the arena re-carve.
func TestColBlockFrameArenaGrowth(t *testing.T) {
	b := NewColBlock(4) // initial frame arena capacity 4
	defer b.Release()
	b.Reset(KindSample)
	stacks := [][]uint32{
		{1, 2, 3},
		{4, 5, 6, 7, 8},
		nil,
		{9},
	}
	for i, st := range stacks {
		s := Sample{Rank: int32(i), Time: Time(i * 10), Stack: st}
		if err := b.AppendSample(&s); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, st := range stacks {
		var rec Record
		if err := b.RecordAt(i, &rec); err != nil {
			t.Fatal(err)
		}
		got := rec.Sample.Stack
		if len(st) == 0 {
			if got != nil {
				t.Fatalf("row %d: empty stack reconstructed as %v", i, got)
			}
			continue
		}
		if !reflect.DeepEqual(append([]uint32(nil), st...), append([]uint32(nil), got...)) {
			t.Fatalf("row %d: stack %v, want %v", i, got, st)
		}
	}
}
