package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"io"
	"sync/atomic"
)

// DigestBytes returns the full hex-encoded sha256 of an encoded trace —
// the canonical content address used everywhere a trace (or shard)
// needs an identity: the foldsvc coordinator's ring routing, the
// rescache keys, and the disk-tier file names all share this one
// helper so no layer invents its own truncated variant.
func DigestBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// DigestReader wraps an io.Reader with an incremental sha256,
// io.TeeReader style: every byte read through it is hashed exactly
// once, so a trace stream can be decoded (by StreamReader or a spool)
// and content-addressed in a single pass without ever buffering the
// body twice. After the stream is drained to EOF, Sum equals
// DigestBytes of the whole input.
type DigestReader struct {
	r io.Reader
	h hash.Hash
	n atomic.Int64
}

// NewDigestReader returns a DigestReader hashing everything read
// from r.
func NewDigestReader(r io.Reader) *DigestReader {
	return &DigestReader{r: r, h: sha256.New()}
}

// Read implements io.Reader, hashing the bytes it passes through.
func (d *DigestReader) Read(p []byte) (int, error) {
	n, err := d.r.Read(p)
	if n > 0 {
		d.h.Write(p[:n])
		d.n.Add(int64(n))
	}
	return n, err
}

// Sum returns the hex sha256 of the bytes read so far. It must not be
// called concurrently with Read.
func (d *DigestReader) Sum() string {
	return hex.EncodeToString(d.h.Sum(nil))
}

// BytesRead reports how many bytes have passed through the reader. It
// is safe to call while another goroutine is mid-Read, which lets a
// watchdog observe upload progress.
func (d *DigestReader) BytesRead() int64 { return d.n.Load() }
