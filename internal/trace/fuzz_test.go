package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// FuzzReadFrom fuzzes the binary trace decoder. Two properties must hold
// for arbitrary input: decoding never panics or over-allocates (the
// section-count validation caps allocations by the input size), and any
// input that decodes successfully re-encodes and re-decodes to the same
// trace — the decoder accepts nothing the encoder cannot reproduce.
//
// The seed corpus is built from the same Builder the example generators
// use: a fully featured small trace (all three record kinds, counters,
// stacks), an empty trace, and a corrupt-count header.
func FuzzReadFrom(f *testing.F) {
	seed := func(tr *Trace) {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	// Fully featured trace (events with and without counters, samples
	// with and without stacks, comms) — mirrors the example apps' shape.
	b := NewBuilder("fuzz", 2)
	b.SetSamplePeriod(1000)
	rA := b.Region("solve")
	rB := b.Region("main")
	b.Event(0, 0, EvIteration, 1)
	b.EventC(0, 10, EvMPI, int64(MPIBarrier), []int64{50, 100, 2, 1, 10})
	b.Event(1, 12, EvMPI, int64(MPIBarrier))
	b.EventC(0, 20, EvMPI, 0, []int64{50, 120, 2, 1, 10})
	b.Event(1, 25, EvMPI, 0)
	b.Sample(0, 500, []int64{100, 200, 5, 1, 50}, []uint32{rA, rB})
	b.Sample(1, 700, []int64{90, 180, 3, 1, 40}, nil)
	b.Comm(0, 1, 800, 850, 4096, 7)
	featured := b.Build()
	seed(featured)

	seed(NewBuilder("empty", 1).Build())

	// A corrupt header claiming far more events than the input holds.
	var corrupt bytes.Buffer
	if err := NewBuilder("c", 1).Build().Write(&corrupt); err != nil {
		f.Fatal(err)
	}
	raw := corrupt.Bytes()
	f.Add(append(raw[:len(raw)-3], 0xff, 0xff, 0xff, 0xff, 0x0f))

	addDamagedSeeds(f, featured)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected cleanly
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("decoded trace failed to re-encode: %v", err)
		}
		tr2, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !reflect.DeepEqual(tr.Meta, tr2.Meta) ||
			!reflect.DeepEqual(tr.Events, tr2.Events) ||
			!reflect.DeepEqual(tr.Samples, tr2.Samples) ||
			!reflect.DeepEqual(tr.Comms, tr2.Comms) {
			t.Fatal("decode → encode → decode is not a fixed point")
		}
	})
}

// addDamagedSeeds seeds the corpus with realistic fault shapes: the
// featured trace truncated at several depths and with single bits
// flipped across the record region — the damage the lenient decoder is
// built to absorb.
func addDamagedSeeds(f *testing.F, tr *Trace) {
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		f.Fatal(err)
	}
	enc := buf.Bytes()
	for _, frac := range []int{30, 55, 80, 95} {
		f.Add(append([]byte(nil), enc[:len(enc)*frac/100]...))
	}
	for _, pos := range []int{len(enc) / 2, len(enc) * 2 / 3, len(enc) - 5} {
		if pos < 0 || pos >= len(enc) {
			continue
		}
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0x40
		f.Add(mut)
	}
}

// FuzzReadIntoBlock fuzzes the columnar decode path against the row
// path. For arbitrary input the block decoder must never panic, every
// returned block must pass Validate, and a lenient block decode must
// salvage exactly the records — and report exactly the DecodeStats —
// of a lenient row decode of the same bytes.
func FuzzReadIntoBlock(f *testing.F) {
	seed := func(tr *Trace) {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	b := NewBuilder("fuzz-block", 2)
	b.SetSamplePeriod(1000)
	rA := b.Region("solve")
	rB := b.Region("main")
	b.Event(0, 0, EvIteration, 1)
	b.EventC(0, 10, EvMPI, int64(MPIBarrier), []int64{50, 100, 2, 1, 10})
	b.Event(0, 20, EvMPI, 0)
	b.Sample(0, 500, []int64{100, 200, 5, 1, 50}, []uint32{rA, rB})
	b.Sample(1, 700, []int64{90, 180, 3, 1, 40}, nil)
	b.Comm(0, 1, 800, 850, 4096, 7)
	featured := b.Build()
	seed(featured)
	seed(NewBuilder("empty", 1).Build())
	addDamagedSeeds(f, featured)

	f.Fuzz(func(t *testing.T, data []byte) {
		srRow, err := NewStreamReaderMode(bytes.NewReader(data), Lenient)
		if err != nil {
			// Header corruption fails both paths identically.
			if _, err2 := NewStreamReaderMode(bytes.NewReader(data), Lenient); err2 == nil {
				t.Fatal("header decode not deterministic")
			}
			return
		}
		var want []Record
		var rec Record
		for {
			err := srRow.Next(&rec)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("lenient row decode failed: %v", err)
			}
			want = append(want, normRecord(&rec))
		}

		srCol, err := NewStreamReaderMode(bytes.NewReader(data), Lenient)
		if err != nil {
			t.Fatalf("row header decoded but columnar header failed: %v", err)
		}
		// A small odd capacity forces plenty of block boundaries.
		blk := NewColBlock(7)
		defer blk.Release()
		var got []Record
		for {
			err := srCol.NextBlock(blk)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("lenient block decode failed: %v", err)
			}
			if err := blk.Validate(); err != nil {
				t.Fatalf("invalid block from decoder: %v", err)
			}
			for i := 0; i < blk.Len(); i++ {
				var r Record
				if err := blk.RecordAt(i, &r); err != nil {
					t.Fatalf("RecordAt(%d): %v", i, err)
				}
				got = append(got, normRecord(&r))
			}
		}
		if len(want) != len(got) {
			t.Fatalf("row path salvaged %d records, columnar %d", len(want), len(got))
		}
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Fatalf("record %d diverged:\nrow      %+v\ncolumnar %+v", i, want[i], got[i])
			}
		}
		if srRow.Stats() != srCol.Stats() {
			t.Fatalf("DecodeStats diverged: row %+v, columnar %+v", srRow.Stats(), srCol.Stats())
		}
	})
}

// FuzzReadFromLenient fuzzes the salvage decoder. For arbitrary input it
// must never panic or hang, and its DecodeStats must be consistent: a
// decode that reports no salvage action (not Degraded) must be
// bit-for-bit equivalent to a strict decode of the same input, and any
// salvaged trace must re-encode cleanly (canonical order preserved).
func FuzzReadFromLenient(f *testing.F) {
	seed := func(tr *Trace) {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	b := NewBuilder("fuzz-lenient", 2)
	b.SetSamplePeriod(1000)
	rA := b.Region("solve")
	b.Event(0, 0, EvIteration, 1)
	b.EventC(0, 10, EvMPI, int64(MPIBarrier), []int64{50, 100, 2, 1, 10})
	b.Event(0, 20, EvMPI, 0)
	b.Sample(0, 500, []int64{100, 200, 5, 1, 50}, []uint32{rA})
	b.Comm(0, 1, 800, 850, 4096, 7)
	featured := b.Build()
	seed(featured)
	seed(NewBuilder("empty", 1).Build())
	addDamagedSeeds(f, featured)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, st, err := ReadFromLenient(bytes.NewReader(data))
		if err != nil {
			// Only header corruption may fail, and it must be a clean
			// wrapped format error.
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("lenient decode failed with non-format error: %v", err)
			}
			return
		}
		if st.Dropped() < 0 || st.Resyncs < 0 || st.BadSections < 0 {
			t.Fatalf("inconsistent stats: %+v", st)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("salvaged trace failed to re-encode: %v", err)
		}
		if !st.Degraded() {
			strict, err := ReadFrom(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("clean lenient decode but strict decode failed: %v", err)
			}
			if !reflect.DeepEqual(tr.Events, strict.Events) ||
				!reflect.DeepEqual(tr.Samples, strict.Samples) ||
				!reflect.DeepEqual(tr.Comms, strict.Comms) {
				t.Fatal("non-degraded lenient decode differs from strict decode")
			}
		}
	})
}
