package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadFrom fuzzes the binary trace decoder. Two properties must hold
// for arbitrary input: decoding never panics or over-allocates (the
// section-count validation caps allocations by the input size), and any
// input that decodes successfully re-encodes and re-decodes to the same
// trace — the decoder accepts nothing the encoder cannot reproduce.
//
// The seed corpus is built from the same Builder the example generators
// use: a fully featured small trace (all three record kinds, counters,
// stacks), an empty trace, and a corrupt-count header.
func FuzzReadFrom(f *testing.F) {
	seed := func(tr *Trace) {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	// Fully featured trace (events with and without counters, samples
	// with and without stacks, comms) — mirrors the example apps' shape.
	b := NewBuilder("fuzz", 2)
	b.SetSamplePeriod(1000)
	rA := b.Region("solve")
	rB := b.Region("main")
	b.Event(0, 0, EvIteration, 1)
	b.EventC(0, 10, EvMPI, int64(MPIBarrier), []int64{50, 100, 2, 1, 10})
	b.Event(1, 12, EvMPI, int64(MPIBarrier))
	b.EventC(0, 20, EvMPI, 0, []int64{50, 120, 2, 1, 10})
	b.Event(1, 25, EvMPI, 0)
	b.Sample(0, 500, []int64{100, 200, 5, 1, 50}, []uint32{rA, rB})
	b.Sample(1, 700, []int64{90, 180, 3, 1, 40}, nil)
	b.Comm(0, 1, 800, 850, 4096, 7)
	seed(b.Build())

	seed(NewBuilder("empty", 1).Build())

	// A corrupt header claiming far more events than the input holds.
	var corrupt bytes.Buffer
	if err := NewBuilder("c", 1).Build().Write(&corrupt); err != nil {
		f.Fatal(err)
	}
	raw := corrupt.Bytes()
	f.Add(append(raw[:len(raw)-3], 0xff, 0xff, 0xff, 0xff, 0x0f))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected cleanly
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("decoded trace failed to re-encode: %v", err)
		}
		tr2, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !reflect.DeepEqual(tr.Meta, tr2.Meta) ||
			!reflect.DeepEqual(tr.Events, tr2.Events) ||
			!reflect.DeepEqual(tr.Samples, tr2.Samples) ||
			!reflect.DeepEqual(tr.Comms, tr2.Comms) {
			t.Fatal("decode → encode → decode is not a fixed point")
		}
	})
}
