package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/counters"
)

// Binary trace format ("UVT1"):
//
//	magic       [4]byte  "UVT1"
//	metaLen     uvarint
//	meta        JSON (Metadata)
//	eventCount  uvarint, then events   (delta-encoded times per record)
//	sampleCount uvarint, then samples
//	commCount   uvarint, then comms
//
// Integers use varint/uvarint encoding; timestamps within each section are
// delta-encoded against the previous record in the section (records are
// stored in canonical sorted order, so deltas are non-negative and small).

var magic = [4]byte{'U', 'V', 'T', '1'}

// ErrBadFormat is wrapped by all decode errors caused by malformed input.
var ErrBadFormat = errors.New("trace: malformed trace data")

// Write encodes the trace to w in the binary format. The trace must be
// sorted (Build and ReadFrom both guarantee this).
func (tr *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	meta, err := json.Marshal(&tr.Meta)
	if err != nil {
		return fmt.Errorf("trace: encoding metadata: %w", err)
	}
	buf := make([]byte, 0, 64)
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	if _, err := bw.Write(meta); err != nil {
		return err
	}

	// Events.
	buf = binary.AppendUvarint(buf[:0], uint64(len(tr.Events)))
	var prev Time
	for _, e := range tr.Events {
		buf = binary.AppendUvarint(buf, uint64(e.Time-prev))
		prev = e.Time
		buf = binary.AppendUvarint(buf, uint64(e.Rank))
		buf = append(buf, byte(e.Type))
		buf = binary.AppendVarint(buf, e.Value)
		if e.HasCounters {
			buf = append(buf, 1)
			for _, v := range e.Counters {
				buf = binary.AppendVarint(buf, v)
			}
		} else {
			buf = append(buf, 0)
		}
		if len(buf) >= 1<<16 {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}

	// Samples.
	buf = binary.AppendUvarint(buf[:0], uint64(len(tr.Samples)))
	prev = 0
	for _, s := range tr.Samples {
		buf = binary.AppendUvarint(buf, uint64(s.Time-prev))
		prev = s.Time
		buf = binary.AppendUvarint(buf, uint64(s.Rank))
		for _, v := range s.Counters {
			buf = binary.AppendVarint(buf, v)
		}
		buf = binary.AppendUvarint(buf, uint64(len(s.Stack)))
		for _, f := range s.Stack {
			buf = binary.AppendUvarint(buf, uint64(f))
		}
		if len(buf) >= 1<<16 {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}

	// Comms.
	buf = binary.AppendUvarint(buf[:0], uint64(len(tr.Comms)))
	prev = 0
	for _, c := range tr.Comms {
		buf = binary.AppendUvarint(buf, uint64(c.SendTime-prev))
		prev = c.SendTime
		buf = binary.AppendVarint(buf, int64(c.RecvTime-c.SendTime))
		buf = binary.AppendUvarint(buf, uint64(c.Src))
		buf = binary.AppendUvarint(buf, uint64(c.Dst))
		buf = binary.AppendVarint(buf, c.Size)
		buf = binary.AppendVarint(buf, int64(c.Tag))
		if len(buf) >= 1<<16 {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadFrom decodes a trace from r.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m)
	}
	metaLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: metadata length: %v", ErrBadFormat, err)
	}
	if metaLen > 1<<30 {
		return nil, fmt.Errorf("%w: metadata length %d too large", ErrBadFormat, metaLen)
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaBuf); err != nil {
		return nil, fmt.Errorf("%w: metadata body: %v", ErrBadFormat, err)
	}
	tr := &Trace{}
	if err := json.Unmarshal(metaBuf, &tr.Meta); err != nil {
		return nil, fmt.Errorf("%w: metadata JSON: %v", ErrBadFormat, err)
	}

	// Events.
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: event count: %v", ErrBadFormat, err)
	}
	if n > 1<<34 {
		return nil, fmt.Errorf("%w: event count %d too large", ErrBadFormat, n)
	}
	tr.Events = make([]Event, 0, min64(n, 1<<20))
	var prev Time
	for i := uint64(0); i < n; i++ {
		dt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: event %d time: %v", ErrBadFormat, i, err)
		}
		rank, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: event %d rank: %v", ErrBadFormat, i, err)
		}
		typ, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: event %d type: %v", ErrBadFormat, i, err)
		}
		val, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: event %d value: %v", ErrBadFormat, i, err)
		}
		flag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: event %d counter flag: %v", ErrBadFormat, i, err)
		}
		prev += Time(dt)
		e := Event{Rank: int32(rank), Time: prev, Type: EventType(typ), Value: val}
		switch flag {
		case 0:
		case 1:
			e.HasCounters = true
			for c := 0; c < int(counters.NumCounters); c++ {
				v, err := binary.ReadVarint(br)
				if err != nil {
					return nil, fmt.Errorf("%w: event %d counter %d: %v", ErrBadFormat, i, c, err)
				}
				e.Counters[c] = v
			}
		default:
			return nil, fmt.Errorf("%w: event %d has invalid counter flag %d", ErrBadFormat, i, flag)
		}
		tr.Events = append(tr.Events, e)
	}

	// Samples.
	n, err = binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: sample count: %v", ErrBadFormat, err)
	}
	if n > 1<<34 {
		return nil, fmt.Errorf("%w: sample count %d too large", ErrBadFormat, n)
	}
	tr.Samples = make([]Sample, 0, min64(n, 1<<20))
	prev = 0
	for i := uint64(0); i < n; i++ {
		dt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: sample %d time: %v", ErrBadFormat, i, err)
		}
		rank, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: sample %d rank: %v", ErrBadFormat, i, err)
		}
		var s Sample
		prev += Time(dt)
		s.Time = prev
		s.Rank = int32(rank)
		for c := 0; c < int(counters.NumCounters); c++ {
			v, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: sample %d counter %d: %v", ErrBadFormat, i, c, err)
			}
			s.Counters[c] = v
		}
		depth, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: sample %d stack depth: %v", ErrBadFormat, i, err)
		}
		if depth > 1024 {
			return nil, fmt.Errorf("%w: sample %d stack depth %d too large", ErrBadFormat, i, depth)
		}
		if depth > 0 {
			s.Stack = make([]uint32, depth)
			for d := range s.Stack {
				f, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("%w: sample %d frame %d: %v", ErrBadFormat, i, d, err)
				}
				s.Stack[d] = uint32(f)
			}
		}
		tr.Samples = append(tr.Samples, s)
	}

	// Comms.
	n, err = binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: comm count: %v", ErrBadFormat, err)
	}
	if n > 1<<34 {
		return nil, fmt.Errorf("%w: comm count %d too large", ErrBadFormat, n)
	}
	tr.Comms = make([]Comm, 0, min64(n, 1<<20))
	prev = 0
	for i := uint64(0); i < n; i++ {
		dt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: comm %d send time: %v", ErrBadFormat, i, err)
		}
		lat, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: comm %d latency: %v", ErrBadFormat, i, err)
		}
		src, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: comm %d src: %v", ErrBadFormat, i, err)
		}
		dst, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: comm %d dst: %v", ErrBadFormat, i, err)
		}
		size, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: comm %d size: %v", ErrBadFormat, i, err)
		}
		tag, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: comm %d tag: %v", ErrBadFormat, i, err)
		}
		prev += Time(dt)
		tr.Comms = append(tr.Comms, Comm{
			Src: int32(src), Dst: int32(dst),
			SendTime: prev, RecvTime: prev + Time(lat),
			Size: size, Tag: int32(tag),
		})
	}
	return tr, nil
}

// WriteFile writes the trace to a file.
func (tr *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a trace from a file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}

func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}
