package trace

import (
	"errors"
	"io"
	"os"
)

// Binary trace format ("UVT1"):
//
//	magic       [4]byte  "UVT1"
//	metaLen     uvarint
//	meta        JSON (Metadata)
//	eventCount  uvarint, then events   (delta-encoded times per record)
//	sampleCount uvarint, then samples
//	commCount   uvarint, then comms
//
// Integers use varint/uvarint encoding; timestamps within each section are
// delta-encoded against the previous record in the section (records are
// stored in canonical sorted order, so deltas are non-negative and small).
//
// The encoder and decoder proper live in stream.go (StreamWriter /
// StreamReader, record-at-a-time); this file keeps the whole-trace
// convenience wrappers over them.

var magic = [4]byte{'U', 'V', 'T', '1'}

// ErrBadFormat is wrapped by all decode errors caused by malformed input.
var ErrBadFormat = errors.New("trace: malformed trace data")

// Write encodes the trace to w in the binary format. The trace must be
// sorted (Build and ReadFrom both guarantee this).
func (tr *Trace) Write(w io.Writer) error {
	sw, err := NewStreamWriter(w, &tr.Meta)
	if err != nil {
		return err
	}
	if err := sw.Begin(KindEvent, len(tr.Events)); err != nil {
		return err
	}
	for i := range tr.Events {
		if err := sw.WriteEvent(&tr.Events[i]); err != nil {
			return err
		}
	}
	if err := sw.Begin(KindSample, len(tr.Samples)); err != nil {
		return err
	}
	for i := range tr.Samples {
		if err := sw.WriteSample(&tr.Samples[i]); err != nil {
			return err
		}
	}
	if err := sw.Begin(KindComm, len(tr.Comms)); err != nil {
		return err
	}
	for i := range tr.Comms {
		if err := sw.WriteComm(&tr.Comms[i]); err != nil {
			return err
		}
	}
	return sw.Close()
}

// ReadFrom decodes a trace from r. When r's total size is discoverable
// (in-memory readers, regular files) declared record counts are checked
// against it before slices are sized, so corrupt headers cannot trigger
// huge allocations.
func ReadFrom(r io.Reader) (*Trace, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	return readAll(sr)
}

// readAll drains a StreamReader into an in-memory Trace.
func readAll(sr *StreamReader) (*Trace, error) {
	tr := &Trace{Meta: *sr.Meta()}
	var rec Record
	for {
		err := sr.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch rec.Kind {
		case KindEvent:
			if tr.Events == nil {
				tr.Events = make([]Event, 0, sr.PreallocHint(KindEvent))
			}
			tr.Events = append(tr.Events, rec.Event)
		case KindSample:
			if tr.Samples == nil {
				tr.Samples = make([]Sample, 0, sr.PreallocHint(KindSample))
			}
			s := rec.Sample
			if len(s.Stack) > 0 {
				// The reader reuses the record's stack buffer; own a copy.
				s.Stack = append([]uint32(nil), s.Stack...)
			}
			tr.Samples = append(tr.Samples, s)
		case KindComm:
			if tr.Comms == nil {
				tr.Comms = make([]Comm, 0, sr.PreallocHint(KindComm))
			}
			tr.Comms = append(tr.Comms, rec.Comm)
		}
	}
	if tr.Events == nil {
		tr.Events = []Event{}
	}
	if tr.Samples == nil {
		tr.Samples = []Sample{}
	}
	if tr.Comms == nil {
		tr.Comms = []Comm{}
	}
	return tr, nil
}

// WriteFile writes the trace to a file.
func (tr *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a trace from a file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}

func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}
