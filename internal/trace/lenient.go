package trace

import (
	"fmt"
	"io"
	"os"
)

// Mode selects how a StreamReader reacts to malformed input. The
// zero value is Strict, which preserves the historical behavior:
// the first undecodable byte aborts the stream with ErrBadFormat.
type Mode int

const (
	// Strict aborts the stream on the first malformed record.
	Strict Mode = iota
	// Lenient salvages what it can: undecodable or implausible records
	// are dropped (tallied in DecodeStats), the decoder resynchronizes at
	// the cursor, and truncated input ends the stream gracefully instead
	// of erroring. Header corruption (magic/metadata) is still fatal —
	// without metadata there is nothing to salvage against.
	Lenient
)

// String names the mode for logs and flags.
func (m Mode) String() string {
	switch m {
	case Strict:
		return "strict"
	case Lenient:
		return "lenient"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// DecodeStats summarizes the damage a lenient decode absorbed. A zero
// value means the input decoded cleanly; Degraded reports whether any
// salvage action was taken.
type DecodeStats struct {
	// DroppedEvents counts event records lost to corruption or truncation.
	DroppedEvents int64
	// DroppedSamples counts sample records lost to corruption or truncation.
	DroppedSamples int64
	// DroppedComms counts comm records lost to corruption or truncation.
	DroppedComms int64
	// BadSections counts section headers whose declared record count was
	// impossible and had to be clamped to what the input could hold.
	BadSections int
	// Resyncs counts how many times the decoder dropped a structurally
	// corrupt record and resumed at the cursor.
	Resyncs int64
	// Truncated reports that the input ended mid-stream; records in
	// sections that were never reached are not counted as dropped.
	Truncated bool
}

// Add folds another decode's salvage tally into st — the merge used when
// a sharded analysis combines per-shard decode stats into one summary.
func (st *DecodeStats) Add(o DecodeStats) {
	st.DroppedEvents += o.DroppedEvents
	st.DroppedSamples += o.DroppedSamples
	st.DroppedComms += o.DroppedComms
	st.BadSections += o.BadSections
	st.Resyncs += o.Resyncs
	st.Truncated = st.Truncated || o.Truncated
}

// Dropped returns the total number of records lost across all kinds.
func (st DecodeStats) Dropped() int64 {
	return st.DroppedEvents + st.DroppedSamples + st.DroppedComms
}

// Degraded reports whether the decode lost anything: records dropped,
// a section count clamped, or the stream truncated.
func (st DecodeStats) Degraded() bool {
	return st.Dropped() > 0 || st.BadSections > 0 || st.Resyncs > 0 || st.Truncated
}

// Warnings renders the stats as human-readable report warnings, one per
// distinct salvage action; empty when the decode was clean.
func (st DecodeStats) Warnings() []string {
	var w []string
	if st.Truncated {
		w = append(w, "salvage decode: input truncated mid-stream")
	}
	if st.Dropped() > 0 {
		w = append(w, fmt.Sprintf(
			"salvage decode: dropped %d events, %d samples, %d comms (%d resyncs)",
			st.DroppedEvents, st.DroppedSamples, st.DroppedComms, st.Resyncs))
	}
	if st.BadSections > 0 {
		w = append(w, fmt.Sprintf(
			"salvage decode: %d section header(s) declared impossible record counts",
			st.BadSections))
	}
	return w
}

// Mode returns the reader's decode mode.
func (sr *StreamReader) Mode() Mode { return sr.mode }

// Stats returns the salvage tally so far. It is complete once Next has
// returned io.EOF; a Strict reader always reports a zero value.
func (sr *StreamReader) Stats() DecodeStats { return sr.stats }

// badRecord is a record-level decode failure. Its message is identical
// to the historical fmt.Errorf("%w: ...", ErrBadFormat, ...) wrapping,
// but it additionally exposes the underlying I/O cause so the lenient
// decoder can tell truncation (io.EOF / io.ErrUnexpectedEOF) apart from
// in-place corruption.
type badRecord struct {
	msg   string
	cause error
}

func (e *badRecord) Error() string { return e.msg }

func (e *badRecord) Unwrap() []error {
	if e.cause == nil {
		return []error{ErrBadFormat}
	}
	return []error{ErrBadFormat, e.cause}
}

// badf builds a badRecord whose message matches what
// fmt.Errorf("%w: "+format, ErrBadFormat, args...) would produce, with
// cause (which may be nil for pure validation failures) kept matchable
// via errors.Is.
func badf(cause error, format string, args ...any) error {
	return &badRecord{
		msg:   ErrBadFormat.Error() + ": " + fmt.Sprintf(format, args...),
		cause: cause,
	}
}

// ReadFromLenient decodes a complete trace from r in salvage mode:
// corrupt or truncated record data is dropped instead of aborting, and
// the returned DecodeStats tallies what was lost. Only header corruption
// (bad magic or metadata) still fails. The salvaged trace keeps canonical
// section order but is not re-validated — callers that need Validate's
// guarantees must check (and possibly tolerate) its verdict themselves.
func ReadFromLenient(r io.Reader) (*Trace, DecodeStats, error) {
	sr, err := NewStreamReaderMode(r, Lenient)
	if err != nil {
		return nil, DecodeStats{}, err
	}
	tr, err := readAll(sr)
	if err != nil {
		return nil, sr.Stats(), err
	}
	return tr, sr.Stats(), nil
}

// ReadFileLenient is ReadFromLenient over a file.
func ReadFileLenient(path string) (*Trace, DecodeStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, DecodeStats{}, err
	}
	defer f.Close()
	return ReadFromLenient(f)
}
