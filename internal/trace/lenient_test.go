package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// featuredTrace builds a trace exercising every record shape: events
// with and without counters, samples with and without stacks, comms.
func featuredTrace(t testing.TB, iters int) *Trace {
	t.Helper()
	b := NewBuilder("lenient", 2)
	b.SetSamplePeriod(1000)
	rA := b.Region("solve")
	rB := b.Region("main")
	base := Time(0)
	for i := 0; i < iters; i++ {
		c := int64(i) * 1000 // running counter base keeps streams monotone
		b.Event(0, base, EvIteration, int64(i+1))
		b.EventC(0, base+10, EvMPI, int64(MPIBarrier), []int64{c + 50, c + 100, c + 2, c + 1, c + 10})
		b.Event(1, base+12, EvMPI, int64(MPIBarrier))
		b.EventC(0, base+20, EvMPI, 0, []int64{c + 60, c + 120, c + 3, c + 2, c + 20})
		b.Event(1, base+25, EvMPI, 0)
		b.Sample(0, base+500, []int64{c + 100, c + 200, c + 5, c + 1, c + 50}, []uint32{rA, rB})
		b.Sample(1, base+700, []int64{c + 90, c + 180, c + 3, c + 1, c + 40}, nil)
		b.Comm(0, 1, base+800, base+850, 4096, 7)
		base += 1000
	}
	return b.Build()
}

func encodeTrace(t testing.TB, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLenientCleanInputMatchesStrict(t *testing.T) {
	enc := encodeTrace(t, featuredTrace(t, 10))
	want, err := ReadFrom(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := ReadFromLenient(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded() {
		t.Fatalf("clean input reported degraded stats: %+v", st)
	}
	if !reflect.DeepEqual(want.Events, got.Events) ||
		!reflect.DeepEqual(want.Samples, got.Samples) ||
		!reflect.DeepEqual(want.Comms, got.Comms) {
		t.Fatal("lenient decode of clean input differs from strict")
	}
}

func TestLenientTruncatedInput(t *testing.T) {
	full := featuredTrace(t, 10)
	enc := encodeTrace(t, full)
	// Strict decoding of every truncation must fail; lenient decoding
	// must salvage a prefix, flag Truncated, and never panic.
	for _, frac := range []int{35, 60, 90} {
		cut := len(enc) * frac / 100
		if _, err := ReadFrom(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("strict decode of %d%% truncation unexpectedly succeeded", frac)
		} else if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("strict truncation error does not wrap ErrBadFormat: %v", err)
		}
		tr, st, err := ReadFromLenient(bytes.NewReader(enc[:cut]))
		if err != nil {
			t.Fatalf("lenient decode of %d%% truncation failed: %v", frac, err)
		}
		if !st.Truncated || !st.Degraded() {
			t.Fatalf("%d%% truncation: stats %+v missing Truncated/Degraded", frac, st)
		}
		total := len(tr.Events) + len(tr.Samples) + len(tr.Comms)
		if total == 0 {
			t.Fatalf("%d%% truncation salvaged nothing", frac)
		}
		if len(tr.Events) > len(full.Events) {
			t.Fatalf("%d%% truncation yielded more events than the original", frac)
		}
		// Salvaged records must be a clean prefix-or-subset: re-encoding
		// must work (monotone timestamps preserved).
		encodeTrace(t, tr)
	}
}

func TestLenientBitFlips(t *testing.T) {
	full := featuredTrace(t, 10)
	enc := encodeTrace(t, full)
	// Flip bits across the record region (past the header third of the
	// file); every outcome must be panic-free, and whatever is salvaged
	// must still be a canonically-ordered, re-encodable trace.
	for pos := len(enc) / 3; pos < len(enc); pos += 97 {
		for _, bit := range []uint{0, 3, 7} {
			mut := append([]byte(nil), enc...)
			mut[pos] ^= 1 << bit
			tr, _, err := ReadFromLenient(bytes.NewReader(mut))
			if err != nil {
				t.Fatalf("lenient decode failed at pos %d bit %d: %v", pos, bit, err)
			}
			encodeTrace(t, tr)
		}
	}
}

func TestLenientDropsImplausibleRecords(t *testing.T) {
	// Hand-encode a trace whose metadata says 1 rank but whose event
	// section contains a rank-5 event: strict returns it, lenient drops it.
	meta := &Metadata{App: "x", Ranks: 1, Duration: 1000}
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Begin(KindEvent, 2); err != nil {
		t.Fatal(err)
	}
	good := Event{Rank: 0, Time: 10, Type: EvIteration, Value: 1}
	bad := Event{Rank: 5, Time: 20, Type: EvIteration, Value: 2}
	if err := sw.WriteEvent(&good); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvent(&bad); err != nil {
		t.Fatal(err)
	}
	for k := KindSample; k < numKinds; k++ {
		if err := sw.Begin(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	strictTr, err := ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(strictTr.Events) != 2 {
		t.Fatalf("strict decode returned %d events, want 2", len(strictTr.Events))
	}

	tr, st, err := ReadFromLenient(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 || tr.Events[0] != good {
		t.Fatalf("lenient decode kept %v, want only the in-range event", tr.Events)
	}
	if st.DroppedEvents != 1 || !st.Degraded() {
		t.Fatalf("stats %+v, want DroppedEvents=1", st)
	}
}

func TestLenientCorruptSectionCountClamped(t *testing.T) {
	// Replace an empty trace's final section count with a huge varint:
	// strict rejects, lenient clamps and finishes.
	enc := encodeTrace(t, NewBuilder("c", 1).Build())
	mut := append(append([]byte(nil), enc[:len(enc)-1]...), 0xff, 0xff, 0xff, 0xff, 0x0f)
	if _, err := ReadFrom(bytes.NewReader(mut)); err == nil {
		t.Fatal("strict decode of corrupt count unexpectedly succeeded")
	}
	_, st, err := ReadFromLenient(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded() {
		t.Fatalf("corrupt section count not reflected in stats: %+v", st)
	}
}

func TestLenientHeaderCorruptionStillFatal(t *testing.T) {
	enc := encodeTrace(t, featuredTrace(t, 1))
	mut := append([]byte(nil), enc...)
	mut[1] ^= 0xff // inside the magic
	if _, _, err := ReadFromLenient(bytes.NewReader(mut)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("lenient decode of corrupt magic: err=%v, want ErrBadFormat", err)
	}
}

func TestLenientStreamReaderEOFSticky(t *testing.T) {
	enc := encodeTrace(t, featuredTrace(t, 2))
	sr, err := NewStreamReaderMode(bytes.NewReader(enc[:len(enc)*2/3]), Lenient)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	for {
		if err := sr.Next(&rec); err != nil {
			if err != io.EOF {
				t.Fatalf("lenient Next error: %v", err)
			}
			break
		}
	}
	if err := sr.Next(&rec); err != io.EOF {
		t.Fatalf("EOF not sticky: %v", err)
	}
	if !sr.Stats().Truncated {
		t.Fatalf("stats %+v missing Truncated", sr.Stats())
	}
}

func TestBadRecordErrorUnwrapping(t *testing.T) {
	err := badf(io.ErrUnexpectedEOF, "event %d time: %v", 3, io.ErrUnexpectedEOF)
	if !errors.Is(err, ErrBadFormat) {
		t.Error("badf error does not match ErrBadFormat")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Error("badf error does not expose its cause")
	}
	want := ErrBadFormat.Error() + ": event 3 time: unexpected EOF"
	if err.Error() != want {
		t.Errorf("badf message %q, want %q", err.Error(), want)
	}
}
