package trace

import (
	"fmt"
	"sort"
)

// Merge combines per-process partial traces into one global trace, the
// way Extrae's mpi2prv merges the files each rank wrote locally. Every
// input must describe the same run: identical rank counts and application
// names, compatible region tables (same id → same name), and pairwise
// disjoint sets of ranks actually carrying records. Communication records
// are deduplicated by their full identity (the receiver writes the record
// in our pipeline, but tolerating sender-written duplicates keeps the
// merger usable for other producers).
func Merge(parts []*Trace) (*Trace, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	first := parts[0]
	out := &Trace{Meta: Metadata{
		App:          first.Meta.App,
		Ranks:        first.Meta.Ranks,
		SamplePeriod: first.Meta.SamplePeriod,
		Seed:         first.Meta.Seed,
		Regions:      map[uint32]string{},
		Params:       map[string]string{},
	}}

	seenRank := make(map[int32]int) // rank → part index that contributed it
	type commKey struct {
		src, dst           int32
		sendTime, recvTime Time
		size               int64
		tag                int32
	}
	seenComm := make(map[commKey]bool)

	for pi, p := range parts {
		if p.Meta.App != out.Meta.App {
			return nil, fmt.Errorf("trace: merging different applications %q and %q", out.Meta.App, p.Meta.App)
		}
		if p.Meta.Ranks != out.Meta.Ranks {
			return nil, fmt.Errorf("trace: merging different rank counts %d and %d", out.Meta.Ranks, p.Meta.Ranks)
		}
		for id, name := range p.Meta.Regions {
			if prev, ok := out.Meta.Regions[id]; ok && prev != name {
				return nil, fmt.Errorf("trace: region id %d is %q in one part and %q in another", id, prev, name)
			}
			out.Meta.Regions[id] = name
		}
		for k, v := range p.Meta.Params {
			out.Meta.Params[k] = v
		}
		if p.Meta.Duration > out.Meta.Duration {
			out.Meta.Duration = p.Meta.Duration
		}

		ranksInPart := map[int32]bool{}
		for _, e := range p.Events {
			ranksInPart[e.Rank] = true
		}
		for _, s := range p.Samples {
			ranksInPart[s.Rank] = true
		}
		for r := range ranksInPart {
			if prev, ok := seenRank[r]; ok {
				return nil, fmt.Errorf("trace: rank %d appears in parts %d and %d", r, prev, pi)
			}
			seenRank[r] = pi
		}

		out.Events = append(out.Events, p.Events...)
		out.Samples = append(out.Samples, p.Samples...)
		for _, c := range p.Comms {
			k := commKey{c.Src, c.Dst, c.SendTime, c.RecvTime, c.Size, c.Tag}
			if seenComm[k] {
				continue
			}
			seenComm[k] = true
			out.Comms = append(out.Comms, c)
		}
	}
	out.Sort()
	return out, nil
}

// SplitByRank partitions a trace into per-rank partial traces (the inverse
// of Merge): part i holds rank i's events and samples plus the
// communication records rank i received. Ranks without any records still
// yield an (empty) part so Merge can reassemble the original.
func (tr *Trace) SplitByRank() []*Trace {
	parts := make([]*Trace, tr.Meta.Ranks)
	for r := range parts {
		parts[r] = &Trace{Meta: tr.Meta}
		parts[r].Meta.Regions = tr.Meta.Regions
		parts[r].Meta.Params = tr.Meta.Params
	}
	for _, e := range tr.Events {
		parts[e.Rank].Events = append(parts[e.Rank].Events, e)
	}
	for _, s := range tr.Samples {
		parts[s.Rank].Samples = append(parts[s.Rank].Samples, s)
	}
	for _, c := range tr.Comms {
		parts[c.Dst].Comms = append(parts[c.Dst].Comms, c)
	}
	// Per-part duration stays the global duration (the run ended when the
	// last rank ended); keep records sorted.
	for _, p := range parts {
		p.Sort()
	}
	return parts
}

// Ranks returns the sorted list of ranks that actually carry records.
func (tr *Trace) Ranks() []int32 {
	set := map[int32]bool{}
	for _, e := range tr.Events {
		set[e.Rank] = true
	}
	for _, s := range tr.Samples {
		set[s.Rank] = true
	}
	out := make([]int32, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
