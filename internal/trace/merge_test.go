package trace

import (
	"reflect"
	"testing"
)

func TestSplitMergeRoundTrip(t *testing.T) {
	tr := buildSmallTrace(t)
	parts := tr.SplitByRank()
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	merged, err := Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Events, tr.Events) {
		t.Fatalf("events differ after split+merge")
	}
	if !reflect.DeepEqual(merged.Samples, tr.Samples) {
		t.Fatalf("samples differ after split+merge")
	}
	if !reflect.DeepEqual(merged.Comms, tr.Comms) {
		t.Fatalf("comms differ after split+merge")
	}
	if merged.Meta.Duration != tr.Meta.Duration {
		t.Fatalf("duration = %d, want %d", merged.Meta.Duration, tr.Meta.Duration)
	}
}

func TestSplitPartsAreRankLocal(t *testing.T) {
	tr := buildSmallTrace(t)
	parts := tr.SplitByRank()
	for r, p := range parts {
		for _, e := range p.Events {
			if e.Rank != int32(r) {
				t.Fatalf("part %d has event of rank %d", r, e.Rank)
			}
		}
		for _, s := range p.Samples {
			if s.Rank != int32(r) {
				t.Fatalf("part %d has sample of rank %d", r, s.Rank)
			}
		}
		for _, c := range p.Comms {
			if c.Dst != int32(r) {
				t.Fatalf("part %d has comm destined to %d", r, c.Dst)
			}
		}
	}
}

func TestMergeRejectsOverlapsAndMismatches(t *testing.T) {
	tr := buildSmallTrace(t)
	parts := tr.SplitByRank()

	if _, err := Merge(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	// Overlapping ranks.
	if _, err := Merge([]*Trace{parts[0], parts[0]}); err == nil {
		t.Fatal("overlapping ranks accepted")
	}
	// Different app.
	other := *parts[1]
	other.Meta.App = "different"
	if _, err := Merge([]*Trace{parts[0], &other}); err == nil {
		t.Fatal("different apps accepted")
	}
	// Different rank counts.
	other2 := *parts[1]
	other2.Meta.Ranks = 5
	if _, err := Merge([]*Trace{parts[0], &other2}); err == nil {
		t.Fatal("different rank counts accepted")
	}
	// Conflicting region tables.
	other3 := *parts[1]
	other3.Meta.Regions = map[uint32]string{1: "clash"}
	if _, err := Merge([]*Trace{parts[0], &other3}); err == nil {
		t.Fatal("conflicting regions accepted")
	}
}

func TestMergeDeduplicatesComms(t *testing.T) {
	tr := buildSmallTrace(t)
	parts := tr.SplitByRank()
	// Duplicate rank 1's comm into rank 0's part (sender-side record).
	parts[0].Comms = append(parts[0].Comms, parts[1].Comms...)
	merged, err := Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Comms) != len(tr.Comms) {
		t.Fatalf("comms = %d, want %d (duplicates kept?)", len(merged.Comms), len(tr.Comms))
	}
}

func TestRanksList(t *testing.T) {
	tr := buildSmallTrace(t)
	if got := tr.Ranks(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Ranks = %v", got)
	}
	parts := tr.SplitByRank()
	if got := parts[1].Ranks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("part Ranks = %v", got)
	}
}
