package trace

import "repro/internal/counters"

// Slice returns the sub-trace covering the time window [from, to),
// re-based to time 0. Slicing is how analysts zoom a long run into its
// steady-state region before clustering, discarding initialization and
// teardown.
//
// MPI enter/exit alternation is kept balanced across the cuts: a rank that
// was inside an MPI call at `from` gets a synthetic enter at time 0
// (marked MPI_Waitall, carrying the rank's last pre-window counter
// snapshot), and a rank still inside a call at `to` gets a synthetic exit
// at the window end (carrying its latest in-window snapshot). The returned
// trace shares no mutable state with the input and validates.
func (tr *Trace) Slice(from, to Time) *Trace {
	if from < 0 {
		from = 0
	}
	if to > tr.Meta.Duration {
		to = tr.Meta.Duration
	}
	if to < from {
		to = from
	}

	out := &Trace{Meta: tr.Meta}
	out.Meta.Duration = to - from
	out.Meta.Regions = make(map[uint32]string, len(tr.Meta.Regions))
	for k, v := range tr.Meta.Regions {
		out.Meta.Regions[k] = v
	}
	out.Meta.Params = make(map[string]string, len(tr.Meta.Params)+2)
	for k, v := range tr.Meta.Params {
		out.Meta.Params[k] = v
	}
	out.Meta.Params["slice_from_ns"] = itoa(int64(from))
	out.Meta.Params["slice_to_ns"] = itoa(int64(to))

	// Pre-window pass: per-rank MPI state and last counter snapshot.
	inMPI := make(map[int32]bool)
	preCtr := make(map[int32]counters.Values)
	havePre := make(map[int32]bool)
	for _, e := range tr.Events {
		if e.Time >= from {
			break
		}
		if e.Type == EvMPI {
			inMPI[e.Rank] = e.Value != 0
		}
		if e.HasCounters {
			preCtr[e.Rank] = e.Counters
			havePre[e.Rank] = true
		}
	}

	// Synthetic enters for ranks cut mid-call.
	for rank, in := range inMPI {
		if !in {
			continue
		}
		se := Event{Rank: rank, Time: 0, Type: EvMPI, Value: int64(MPIWaitall)}
		if havePre[rank] {
			se.HasCounters = true
			se.Counters = preCtr[rank]
		}
		out.Events = append(out.Events, se)
	}

	// In-window events, re-based.
	stillIn := make(map[int32]bool)
	for rank, in := range inMPI {
		stillIn[rank] = in
	}
	lastCtr := make(map[int32]counters.Values)
	haveLast := make(map[int32]bool)
	for r, v := range preCtr {
		lastCtr[r], haveLast[r] = v, true
	}
	for _, e := range tr.Events {
		if e.Time < from {
			continue
		}
		if e.Time >= to {
			break
		}
		ne := e
		ne.Time = e.Time - from
		out.Events = append(out.Events, ne)
		if e.Type == EvMPI {
			stillIn[e.Rank] = e.Value != 0
		}
		if e.HasCounters {
			lastCtr[e.Rank] = e.Counters
			haveLast[e.Rank] = true
		}
	}

	// Synthetic exits for ranks still inside a call at the window end.
	for rank, in := range stillIn {
		if !in {
			continue
		}
		se := Event{Rank: rank, Time: out.Meta.Duration, Type: EvMPI, Value: 0}
		if haveLast[rank] {
			se.HasCounters = true
			se.Counters = lastCtr[rank]
		}
		out.Events = append(out.Events, se)
	}

	for _, s := range tr.Samples {
		if s.Time < from || s.Time >= to {
			continue
		}
		ns := s
		ns.Time = s.Time - from
		if len(s.Stack) > 0 {
			ns.Stack = append([]uint32(nil), s.Stack...)
		}
		out.Samples = append(out.Samples, ns)
	}
	for _, c := range tr.Comms {
		if c.SendTime < from || c.RecvTime >= to {
			continue
		}
		nc := c
		nc.SendTime = c.SendTime - from
		nc.RecvTime = c.RecvTime - from
		out.Comms = append(out.Comms, nc)
	}
	out.Sort()
	return out
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
