package trace

import (
	"math/rand/v2"
	"testing"
)

// sliceSource builds a 1-rank trace:
//
//	compute [0,100) | MPI [100,200] | compute [200,300) | MPI [300,400] | compute [400,500)
//
// with samples every 50 ns and counters on every probe.
func sliceSource(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder("s", 1)
	b.EventC(0, 100, EvMPI, int64(MPIBarrier), []int64{100})
	b.EventC(0, 200, EvMPI, 0, []int64{100})
	b.EventC(0, 300, EvMPI, int64(MPIAllreduce), []int64{200})
	b.EventC(0, 400, EvMPI, 0, []int64{200})
	b.Event(0, 500, EvIteration, 1)
	for ts := Time(0); ts < 500; ts += 50 {
		ins := int64(0)
		switch {
		case ts < 100:
			ins = int64(ts)
		case ts < 200:
			ins = 100
		case ts < 300:
			ins = 100 + int64(ts-200)
		case ts < 400:
			ins = 200
		default:
			ins = 200 + int64(ts-400)
		}
		b.Sample(0, ts, []int64{ins}, nil)
	}
	return b.Build()
}

func TestSliceBasicWindow(t *testing.T) {
	tr := sliceSource(t)
	sl := tr.Slice(200, 400)
	if err := sl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sl.Meta.Duration != 200 {
		t.Fatalf("duration = %d", sl.Meta.Duration)
	}
	// The barrier's exit at t=200 falls inside [200,400), so the rank was
	// "inside MPI" at the cut: a synthetic enter at 0 pairs with the real
	// exit (rebased to 0). The allreduce enter at 300→100 pairs with a
	// synthetic exit at the window end (its real exit at 400 is outside).
	var enters, exits int
	for _, e := range sl.Events {
		if e.Type == EvMPI {
			if e.Value != 0 {
				enters++
			} else {
				exits++
			}
		}
	}
	if enters != 2 || exits != 2 {
		t.Fatalf("enters/exits = %d/%d: %+v", enters, exits, sl.Events)
	}
	last := sl.Events[len(sl.Events)-1]
	if last.Type != EvMPI || last.Value != 0 || last.Time != 200 {
		t.Fatalf("missing synthetic exit at window end: %+v", last)
	}
	// Samples rebased: times 200..350 → 0..150.
	if len(sl.Samples) != 4 {
		t.Fatalf("samples = %d", len(sl.Samples))
	}
	if sl.Samples[0].Time != 0 || sl.Samples[3].Time != 150 {
		t.Fatalf("sample times = %v, %v", sl.Samples[0].Time, sl.Samples[3].Time)
	}
	if sl.Meta.Params["slice_from_ns"] != "200" || sl.Meta.Params["slice_to_ns"] != "400" {
		t.Fatalf("slice params = %v", sl.Meta.Params)
	}
}

func TestSliceCutMidMPI(t *testing.T) {
	tr := sliceSource(t)
	// Window [150, 350): cuts into the barrier (inside at 150) and into
	// the allreduce (still inside at 350).
	sl := tr.Slice(150, 350)
	if err := sl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Synthetic enter at 0 (we were inside the barrier), real exit at 50;
	// real enter at 150, synthetic exit at 200.
	var first, last Event
	for _, e := range sl.Events {
		if e.Type == EvMPI {
			if first == (Event{}) {
				first = e
			}
			last = e
		}
	}
	if first.Time != 0 || first.Value == 0 {
		t.Fatalf("first MPI event = %+v, want synthetic enter at 0", first)
	}
	if last.Time != 200 || last.Value != 0 {
		t.Fatalf("last MPI event = %+v, want synthetic exit at 200", last)
	}
	// The synthetic enter carries the last pre-window counter snapshot.
	if !first.HasCounters || first.Counters[0] != 100 {
		t.Fatalf("synthetic enter counters = %+v", first)
	}
}

func TestSliceWholeTraceIsIdentityModuloRebase(t *testing.T) {
	tr := sliceSource(t)
	sl := tr.Slice(0, tr.Meta.Duration)
	if err := sl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sl.Samples) != len(tr.Samples) {
		t.Fatalf("samples = %d, want %d", len(sl.Samples), len(tr.Samples))
	}
	// All real events present (the iteration event at 500 == Duration is
	// outside the half-open window; MPI events all inside).
	if len(sl.Events) != len(tr.Events)-1 {
		t.Fatalf("events = %d, want %d", len(sl.Events), len(tr.Events)-1)
	}
}

func TestSliceEmptyAndClamped(t *testing.T) {
	tr := sliceSource(t)
	sl := tr.Slice(700, 900) // beyond the end
	if sl.Meta.Duration != 0 || len(sl.Events) != 0 || len(sl.Samples) != 0 {
		t.Fatalf("out-of-range slice = %+v", sl)
	}
	sl2 := tr.Slice(-100, 50)
	if err := sl2.Validate(); err != nil {
		t.Fatal(err)
	}
	if sl2.Meta.Duration != 50 {
		t.Fatalf("clamped duration = %d", sl2.Meta.Duration)
	}
}

func TestSliceCommsWindow(t *testing.T) {
	b := NewBuilder("c", 2)
	b.Comm(0, 1, 100, 150, 64, 1)
	b.Comm(0, 1, 300, 350, 64, 2)
	b.Event(0, 500, EvIteration, 1)
	b.Event(1, 500, EvIteration, 1)
	tr := b.Build()
	sl := tr.Slice(200, 400)
	if len(sl.Comms) != 1 || sl.Comms[0].Tag != 2 {
		t.Fatalf("comms = %+v", sl.Comms)
	}
	if sl.Comms[0].SendTime != 100 || sl.Comms[0].RecvTime != 150 {
		t.Fatalf("rebased comm = %+v", sl.Comms[0])
	}
}

// TestSliceRandomWindowsAlwaysValid slices randomized traces at random
// windows; the result must always validate.
func TestSliceRandomWindowsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 20; trial++ {
		ranks := 1 + rng.IntN(4)
		b := NewBuilder("rand", ranks)
		now := make([]Time, ranks)
		ctr := make([][5]int64, ranks)
		inMPI := make([]bool, ranks)
		for i := 0; i < 100; i++ {
			r := int32(rng.IntN(ranks))
			now[r] += Time(rng.IntN(500))
			for c := range ctr[r] {
				ctr[r][c] += rng.Int64N(50)
			}
			if inMPI[r] || rng.IntN(2) == 0 {
				val := int64(MPIBarrier)
				if inMPI[r] {
					val = 0
				}
				b.EventC(r, now[r], EvMPI, val, ctr[r][:])
				inMPI[r] = !inMPI[r]
			} else {
				b.Sample(r, now[r], ctr[r][:], nil)
			}
		}
		for r := int32(0); r < int32(ranks); r++ {
			if inMPI[r] {
				now[r]++
				b.EventC(r, now[r], EvMPI, 0, ctr[r][:])
			}
		}
		tr := b.Build()
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: source invalid: %v", trial, err)
		}
		for w := 0; w < 10; w++ {
			from := Time(rng.Int64N(int64(tr.Meta.Duration) + 1))
			to := from + Time(rng.Int64N(int64(tr.Meta.Duration)+1))
			sl := tr.Slice(from, to)
			if err := sl.Validate(); err != nil {
				t.Fatalf("trial %d window [%d,%d): %v", trial, from, to, err)
			}
		}
	}
}

func TestSliceDoesNotAliasSource(t *testing.T) {
	tr := sliceSource(t)
	sl := tr.Slice(0, 250)
	sl.Meta.Regions[9999] = "new"
	sl.Meta.Params["x"] = "y"
	if _, ok := tr.Meta.Regions[9999]; ok {
		t.Fatal("regions aliased")
	}
	if _, ok := tr.Meta.Params["x"]; ok {
		t.Fatal("params aliased")
	}
}
