package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/counters"
)

// Kind identifies which record variant a Record carries. The binary
// format stores the three record kinds in three sequential sections, so a
// stream always yields all events (time-sorted), then all samples, then
// all comms — the canonical order Build and Sort produce.
type Kind uint8

const (
	KindEvent Kind = iota
	KindSample
	KindComm
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindEvent:
		return "event"
	case KindSample:
		return "sample"
	case KindComm:
		return "comm"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one trace record of any kind. Only the variant selected by
// Kind is meaningful; the other two may hold stale data from a previous
// use of the same Record value.
type Record struct {
	Kind   Kind
	Event  Event
	Sample Sample
	Comm   Comm
}

// Source yields trace records one at a time in canonical section order
// (events, then samples, then comms, each time-sorted). It is the
// record-stream interface the analysis pipeline consumes, implemented by
// both the in-memory TraceSource and the decoding StreamReader — so batch
// and streaming analysis share one input contract.
type Source interface {
	// Meta returns the stream's metadata, available before any record.
	Meta() *Metadata
	// Next fills rec with the next record and returns nil, or returns
	// io.EOF after the last record (any other error is sticky). The
	// implementation may reuse rec's storage (e.g. the sample stack
	// buffer): callers that retain data across calls must copy it.
	Next(rec *Record) error
}

// TraceSource adapts an in-memory Trace to the Source interface, letting
// the batch path run through the same streaming stages as a decoder-fed
// analysis.
type TraceSource struct {
	tr   *Trace
	kind Kind
	i    int
}

// NewTraceSource returns a Source iterating tr's records in section
// order. The trace must be sorted (Build, Sort and ReadFrom guarantee
// this). Sample stacks alias the trace's storage.
func NewTraceSource(tr *Trace) *TraceSource {
	return &TraceSource{tr: tr}
}

// Meta returns the trace metadata.
func (s *TraceSource) Meta() *Metadata { return &s.tr.Meta }

// Next implements Source.
func (s *TraceSource) Next(rec *Record) error {
	for {
		switch s.kind {
		case KindEvent:
			if s.i < len(s.tr.Events) {
				rec.Kind = KindEvent
				rec.Event = s.tr.Events[s.i]
				s.i++
				return nil
			}
		case KindSample:
			if s.i < len(s.tr.Samples) {
				rec.Kind = KindSample
				rec.Sample = s.tr.Samples[s.i]
				s.i++
				return nil
			}
		case KindComm:
			if s.i < len(s.tr.Comms) {
				rec.Kind = KindComm
				rec.Comm = s.tr.Comms[s.i]
				s.i++
				return nil
			}
		default:
			return io.EOF
		}
		s.kind++
		s.i = 0
	}
}

// maxSectionRecords caps declared record counts when the input size is
// unknown; with a known size the tighter remaining-bytes bound applies.
const maxSectionRecords = 1 << 34

// minRecordSize is the smallest possible encoding of one record of each
// kind, used to validate declared section counts against the remaining
// input before anything is allocated: event = dt + rank + type + value +
// flag; sample = dt + rank + counters + depth; comm = six varints.
var minRecordSize = [numKinds]uint64{
	KindEvent:  5,
	KindSample: uint64(counters.NumCounters) + 3,
	KindComm:   6,
}

// countingReader counts bytes consumed from the underlying reader so the
// stream can compare declared section sizes against what remains.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// StreamReader decodes a binary trace record-at-a-time, holding only the
// metadata and O(1) section state — never the full trace. It implements
// Source; ReadFrom and ReadFile are thin collect-everything wrappers over
// it.
type StreamReader struct {
	br    *bufio.Reader
	cr    countingReader
	limit int64 // total input size in bytes, -1 when unknown
	meta  Metadata
	mode  Mode

	kind     Kind   // section being decoded (numKinds when finished)
	counted  bool   // current section's count header has been read
	left     uint64 // records remaining in the current section
	idx      uint64 // index of the next record within the section
	prev     Time   // delta-decoding base for the current section
	prevRank int32  // rank of the last accepted record (lenient sort fence)
	counts   [numKinds]uint64
	stats    DecodeStats
	err      error // sticky terminal state (io.EOF or a decode error)

	// pending buffers the record that ended a lenient NextBlock batch
	// (a kind change); it opens the next block.
	pending    Record
	hasPending bool
}

// NewStreamReader opens a streaming decoder over r, reading the header
// (magic + metadata) immediately. When r's total size is discoverable
// (bytes.Reader-style Len, or a regular file) it is used to reject
// malformed section counts before any allocation; use
// NewStreamReaderSize to supply the size explicitly.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	return NewStreamReaderSize(r, inputSize(r))
}

// NewStreamReaderMode is NewStreamReader with an explicit decode mode.
// In Lenient mode record-level corruption and truncation are absorbed
// (records dropped, the damage tallied in Stats) instead of aborting the
// stream; header corruption remains fatal in both modes.
func NewStreamReaderMode(r io.Reader, mode Mode) (*StreamReader, error) {
	sr, err := NewStreamReaderSize(r, inputSize(r))
	if err != nil {
		return nil, err
	}
	sr.mode = mode
	return sr, nil
}

// NewStreamReaderSize is NewStreamReader with an explicit total input
// size in bytes (pass a negative size when unknown). The size is used
// only to validate declared record counts, never to truncate reads.
func NewStreamReaderSize(r io.Reader, size int64) (*StreamReader, error) {
	sr := &StreamReader{cr: countingReader{r: r}, limit: size}
	if size < 0 {
		sr.limit = -1
	}
	sr.br = bufio.NewReaderSize(&sr.cr, 1<<20)

	var m [4]byte
	if _, err := io.ReadFull(sr.br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m)
	}
	metaLen, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return nil, fmt.Errorf("%w: metadata length: %v", ErrBadFormat, err)
	}
	if metaLen > 1<<30 {
		return nil, fmt.Errorf("%w: metadata length %d too large", ErrBadFormat, metaLen)
	}
	if rem := sr.remaining(); rem >= 0 && metaLen > uint64(rem) {
		return nil, fmt.Errorf("%w: metadata length %d exceeds remaining input (%d bytes)",
			ErrBadFormat, metaLen, rem)
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(sr.br, metaBuf); err != nil {
		return nil, fmt.Errorf("%w: metadata body: %v", ErrBadFormat, err)
	}
	if err := json.Unmarshal(metaBuf, &sr.meta); err != nil {
		return nil, fmt.Errorf("%w: metadata JSON: %v", ErrBadFormat, err)
	}
	return sr, nil
}

// inputSize discovers r's remaining byte count when cheaply possible:
// in-memory readers report Len, regular files their size minus offset.
func inputSize(r io.Reader) int64 {
	switch v := r.(type) {
	case interface{ Len() int }:
		return int64(v.Len())
	case *os.File:
		if fi, err := v.Stat(); err == nil && fi.Mode().IsRegular() {
			if pos, err := v.Seek(0, io.SeekCurrent); err == nil && pos <= fi.Size() {
				return fi.Size() - pos
			}
		}
	}
	return -1
}

// Meta returns the decoded metadata.
func (sr *StreamReader) Meta() *Metadata { return &sr.meta }

// BytesRead returns how many input bytes have been consumed so far
// (excluding readahead still buffered).
func (sr *StreamReader) BytesRead() int64 {
	return sr.cr.n - int64(sr.br.Buffered())
}

// remaining returns how many input bytes are left, or -1 when the total
// size is unknown.
func (sr *StreamReader) remaining() int64 {
	if sr.limit < 0 {
		return -1
	}
	rem := sr.limit - sr.BytesRead()
	if rem < 0 {
		rem = 0
	}
	return rem
}

// PreallocHint returns a conservative capacity for collecting the
// current section: the declared count clamped by a fixed bound and, when
// the input size is known, by how many records the remaining bytes could
// possibly encode. It is valid once the section's first record has been
// returned (0 before that).
func (sr *StreamReader) PreallocHint(k Kind) int {
	n := sr.counts[k]
	if rem := sr.remaining(); rem >= 0 {
		// remaining() is measured after some records may already have been
		// consumed, so add the consumed count back conservatively.
		if byBytes := uint64(rem)/minRecordSize[k] + sr.idx; byBytes < n {
			n = byBytes
		}
	}
	return min64(n, 1<<20)
}

func (sr *StreamReader) fail(err error) error {
	sr.err = err
	return err
}

// Next implements Source: it decodes the next record in section order,
// returning io.EOF after the final comm record. The sample stack buffer
// in rec is reused across calls — copy it to retain it.
func (sr *StreamReader) Next(rec *Record) error {
	if sr.err != nil {
		return sr.err
	}
	if sr.mode == Lenient {
		return sr.nextLenient(rec)
	}
	return sr.nextStrict(rec)
}

func (sr *StreamReader) nextStrict(rec *Record) error {
	for sr.left == 0 {
		if sr.counted {
			sr.kind++
			sr.counted = false
		}
		if sr.kind >= numKinds {
			return sr.fail(io.EOF)
		}
		if err := sr.beginSection(); err != nil {
			return sr.fail(err)
		}
	}
	var err error
	switch sr.kind {
	case KindEvent:
		err = sr.readEvent(rec)
	case KindSample:
		err = sr.readSample(rec)
	default:
		err = sr.readComm(rec)
	}
	if err != nil {
		return sr.fail(err)
	}
	sr.idx++
	sr.left--
	return nil
}

// maxLenientResyncs caps how many corrupt records a lenient decode may
// drop-and-resync past before declaring the rest of the stream unusable.
// Varints are self-delimiting, so a resync usually realigns within a
// record or two; a stream that keeps failing past this bound is noise.
const maxLenientResyncs = 1 << 16

// nextLenient is the salvage decode loop: structurally corrupt records
// are dropped with the cursor resynchronizing at the next varint
// boundary, semantically impossible records (rank out of range, time
// past the trace end, sort-order violations) are dropped in place, and
// truncation ends the stream gracefully with Stats().Truncated set.
func (sr *StreamReader) nextLenient(rec *Record) error {
	for {
		for sr.left == 0 {
			if sr.counted {
				sr.kind++
				sr.counted = false
			}
			if sr.kind >= numKinds {
				return sr.fail(io.EOF)
			}
			if err := sr.beginSection(); err != nil {
				// A section header that cannot be decoded leaves no way to
				// locate later sections: salvage what was read so far.
				sr.truncate()
				return sr.fail(io.EOF)
			}
		}
		prev0, prevRank0 := sr.prev, sr.prevRank
		var err error
		switch sr.kind {
		case KindEvent:
			err = sr.readEvent(rec)
		case KindSample:
			err = sr.readSample(rec)
		default:
			err = sr.readComm(rec)
		}
		if err == nil {
			sr.idx++
			sr.left--
			if !sr.plausible(rec, prev0) {
				// Decoded but semantically impossible — drop it and undo its
				// effect on the delta base so one corrupt timestamp cannot
				// poison the rest of the section.
				sr.prev, sr.prevRank = prev0, prevRank0
				sr.dropOne(sr.kind)
				continue
			}
			sr.noteAccepted(rec)
			return nil
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// The input ends mid-record: everything decoded so far stands.
			sr.truncate()
			return sr.fail(io.EOF)
		}
		// In-place corruption: drop the record and resume decoding at the
		// cursor, giving up once the resync budget is spent.
		sr.stats.Resyncs++
		sr.dropOne(sr.kind)
		sr.idx++
		sr.left--
		if sr.stats.Resyncs >= maxLenientResyncs {
			sr.truncate()
			return sr.fail(io.EOF)
		}
	}
}

// plausible applies the semantic fences of lenient mode: ranks must be
// inside the metadata's range, timestamps must not pass the declared
// duration, and the section's (time, rank) sort order must hold — the
// same invariants Trace.Validate demands, checked record-by-record so a
// corrupt-but-decodable record is dropped instead of poisoning analysis.
// prevTime is the delta base before this record was decoded, i.e. the
// previous accepted record's timestamp.
func (sr *StreamReader) plausible(rec *Record, prevTime Time) bool {
	ranks := int32(sr.meta.Ranks)
	end := sr.meta.Duration
	switch rec.Kind {
	case KindEvent:
		e := &rec.Event
		if ranks > 0 && (e.Rank < 0 || e.Rank >= ranks) {
			return false
		}
		if end > 0 && e.Time > end {
			return false
		}
		if e.Time == prevTime && sr.idx > 1 && e.Rank < sr.prevRank {
			return false
		}
	case KindSample:
		s := &rec.Sample
		if ranks > 0 && (s.Rank < 0 || s.Rank >= ranks) {
			return false
		}
		if end > 0 && s.Time > end {
			return false
		}
		if s.Time == prevTime && sr.idx > 1 && s.Rank < sr.prevRank {
			return false
		}
	case KindComm:
		c := &rec.Comm
		if ranks > 0 && (c.Src < 0 || c.Src >= ranks || c.Dst < 0 || c.Dst >= ranks) {
			return false
		}
		if c.RecvTime < c.SendTime || c.Size < 0 {
			return false
		}
		if end > 0 && (c.SendTime > end || c.RecvTime > end) {
			return false
		}
	}
	return true
}

// noteAccepted records the sort-fence state of a record that was
// returned to the caller.
func (sr *StreamReader) noteAccepted(rec *Record) {
	switch rec.Kind {
	case KindEvent:
		sr.prevRank = rec.Event.Rank
	case KindSample:
		sr.prevRank = rec.Sample.Rank
	default:
		sr.prevRank = rec.Comm.Src
	}
}

// dropOne tallies one dropped record of kind k.
func (sr *StreamReader) dropOne(k Kind) { sr.dropN(k, 1) }

func (sr *StreamReader) dropN(k Kind, n uint64) {
	switch k {
	case KindEvent:
		sr.stats.DroppedEvents += int64(n)
	case KindSample:
		sr.stats.DroppedSamples += int64(n)
	case KindComm:
		sr.stats.DroppedComms += int64(n)
	}
}

// truncate marks the remainder of the stream unusable: undelivered
// records of the current section are counted as dropped (sections never
// begun have unknown counts and are not) and the next call ends the
// stream.
func (sr *StreamReader) truncate() {
	sr.stats.Truncated = true
	if sr.counted && sr.left > 0 {
		sr.dropN(sr.kind, sr.left)
		sr.left = 0
	}
	sr.counted = false
	sr.kind = numKinds
}

// beginSection reads and validates the current section's record count.
func (sr *StreamReader) beginSection() error {
	n, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "%s count: %v", sr.kind, err)
	}
	bad := false
	if n > maxSectionRecords {
		if sr.mode != Lenient {
			return badf(nil, "%s count %d too large", sr.kind, n)
		}
		bad = true
		n = maxSectionRecords
	}
	// With a known input size, a section cannot declare more records than
	// the remaining bytes could minimally encode — reject corrupt counts
	// here, before any caller sizes a slice from them. Lenient decodes
	// clamp to that bound instead and let truncation handling finish the
	// job when the stream runs dry early.
	if rem := sr.remaining(); rem >= 0 && n > uint64(rem)/minRecordSize[sr.kind] {
		if sr.mode != Lenient {
			return badf(nil, "%s count %d exceeds remaining input (%d bytes)",
				sr.kind, n, rem)
		}
		bad = true
		n = uint64(rem) / minRecordSize[sr.kind]
	}
	if bad {
		sr.stats.BadSections++
	}
	sr.counts[sr.kind] = n
	sr.left = n
	sr.idx = 0
	sr.prev = 0
	sr.counted = true
	return nil
}

// advance delta-decodes the next timestamp of the current section.
func (sr *StreamReader) advance(dt uint64, what string) (Time, error) {
	if dt > math.MaxInt64 || sr.prev > math.MaxInt64-Time(dt) {
		return 0, badf(nil, "%s %d %s delta %d overflows", sr.kind, sr.idx, what, dt)
	}
	sr.prev += Time(dt)
	return sr.prev, nil
}

func (sr *StreamReader) readEvent(rec *Record) error {
	i := sr.idx
	dt, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "event %d time: %v", i, err)
	}
	rank, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "event %d rank: %v", i, err)
	}
	typ, err := sr.br.ReadByte()
	if err != nil {
		return badf(err, "event %d type: %v", i, err)
	}
	val, err := binary.ReadVarint(sr.br)
	if err != nil {
		return badf(err, "event %d value: %v", i, err)
	}
	flag, err := sr.br.ReadByte()
	if err != nil {
		return badf(err, "event %d counter flag: %v", i, err)
	}
	t, err := sr.advance(dt, "time")
	if err != nil {
		return err
	}
	e := &rec.Event
	*e = Event{Rank: int32(rank), Time: t, Type: EventType(typ), Value: val}
	switch flag {
	case 0:
	case 1:
		e.HasCounters = true
		for c := 0; c < int(counters.NumCounters); c++ {
			v, err := binary.ReadVarint(sr.br)
			if err != nil {
				return badf(err, "event %d counter %d: %v", i, c, err)
			}
			e.Counters[c] = v
		}
	default:
		return badf(nil, "event %d has invalid counter flag %d", i, flag)
	}
	rec.Kind = KindEvent
	return nil
}

func (sr *StreamReader) readSample(rec *Record) error {
	i := sr.idx
	dt, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "sample %d time: %v", i, err)
	}
	rank, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "sample %d rank: %v", i, err)
	}
	t, err := sr.advance(dt, "time")
	if err != nil {
		return err
	}
	s := &rec.Sample
	s.Time = t
	s.Rank = int32(rank)
	for c := 0; c < int(counters.NumCounters); c++ {
		v, err := binary.ReadVarint(sr.br)
		if err != nil {
			return badf(err, "sample %d counter %d: %v", i, c, err)
		}
		s.Counters[c] = v
	}
	depth, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "sample %d stack depth: %v", i, err)
	}
	if depth > 1024 {
		return badf(nil, "sample %d stack depth %d too large", i, depth)
	}
	s.Stack = s.Stack[:0]
	for d := uint64(0); d < depth; d++ {
		f, err := binary.ReadUvarint(sr.br)
		if err != nil {
			return badf(err, "sample %d frame %d: %v", i, d, err)
		}
		s.Stack = append(s.Stack, uint32(f))
	}
	if depth == 0 {
		s.Stack = nil
	}
	rec.Kind = KindSample
	return nil
}

func (sr *StreamReader) readComm(rec *Record) error {
	i := sr.idx
	dt, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "comm %d send time: %v", i, err)
	}
	lat, err := binary.ReadVarint(sr.br)
	if err != nil {
		return badf(err, "comm %d latency: %v", i, err)
	}
	src, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "comm %d src: %v", i, err)
	}
	dst, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "comm %d dst: %v", i, err)
	}
	size, err := binary.ReadVarint(sr.br)
	if err != nil {
		return badf(err, "comm %d size: %v", i, err)
	}
	tag, err := binary.ReadVarint(sr.br)
	if err != nil {
		return badf(err, "comm %d tag: %v", i, err)
	}
	t, err := sr.advance(dt, "send time")
	if err != nil {
		return err
	}
	rec.Comm = Comm{
		Src: int32(src), Dst: int32(dst),
		SendTime: t, RecvTime: t + Time(lat),
		Size: size, Tag: int32(tag),
	}
	rec.Kind = KindComm
	return nil
}

// StreamWriter encodes a binary trace record-at-a-time: header first,
// then the three sections in order, each begun with its record count.
// Its output is byte-identical to Trace.Write for the same records —
// Write is a thin wrapper over it.
type StreamWriter struct {
	bw   *bufio.Writer
	buf  []byte
	next Kind   // section Begin expects next
	open bool   // a section is begun and not yet complete
	left uint64 // records still owed to the open section
	prev Time
	err  error
}

// NewStreamWriter writes the magic and metadata header to w and returns
// a writer positioned before the event section. The caller must Begin
// and fill each of the three sections in order, then Close.
func NewStreamWriter(w io.Writer, meta *Metadata) (*StreamWriter, error) {
	sw := &StreamWriter{bw: bufio.NewWriterSize(w, 1<<20)}
	if _, err := sw.bw.Write(magic[:]); err != nil {
		return nil, err
	}
	mj, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("trace: encoding metadata: %w", err)
	}
	sw.buf = make([]byte, 0, 64)
	sw.buf = binary.AppendUvarint(sw.buf, uint64(len(mj)))
	if _, err := sw.bw.Write(sw.buf); err != nil {
		return nil, err
	}
	sw.buf = sw.buf[:0]
	if _, err := sw.bw.Write(mj); err != nil {
		return nil, err
	}
	return sw, nil
}

// Begin opens section k, declaring its exact record count. Sections must
// be begun in order (events, samples, comms), each exactly once.
func (sw *StreamWriter) Begin(k Kind, count int) error {
	if sw.err != nil {
		return sw.err
	}
	if k != sw.next || sw.open {
		return sw.fail(fmt.Errorf("trace: Begin(%v) out of order", k))
	}
	if count < 0 {
		return sw.fail(fmt.Errorf("trace: negative %v count %d", k, count))
	}
	sw.buf = binary.AppendUvarint(sw.buf, uint64(count))
	sw.next++
	sw.open = count > 0
	sw.left = uint64(count)
	sw.prev = 0
	return sw.flushMaybe()
}

func (sw *StreamWriter) fail(err error) error {
	sw.err = err
	return err
}

// ready checks that section k is open with records still owed.
func (sw *StreamWriter) ready(k Kind) error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.open || sw.next != k+1 {
		return sw.fail(fmt.Errorf("trace: %v written outside its section", k))
	}
	if sw.left == 0 {
		return sw.fail(fmt.Errorf("trace: more %vs written than declared", k))
	}
	return nil
}

func (sw *StreamWriter) consumed() error {
	sw.left--
	if sw.left == 0 {
		sw.open = false
	}
	return sw.flushMaybe()
}

// flushMaybe spills the accumulation buffer once it passes 64 KiB.
func (sw *StreamWriter) flushMaybe() error {
	if len(sw.buf) < 1<<16 {
		return nil
	}
	if _, err := sw.bw.Write(sw.buf); err != nil {
		return sw.fail(err)
	}
	sw.buf = sw.buf[:0]
	return nil
}

// WriteEvent appends one event to the open event section.
func (sw *StreamWriter) WriteEvent(e *Event) error {
	if err := sw.ready(KindEvent); err != nil {
		return err
	}
	sw.buf = binary.AppendUvarint(sw.buf, uint64(e.Time-sw.prev))
	sw.prev = e.Time
	sw.buf = binary.AppendUvarint(sw.buf, uint64(e.Rank))
	sw.buf = append(sw.buf, byte(e.Type))
	sw.buf = binary.AppendVarint(sw.buf, e.Value)
	if e.HasCounters {
		sw.buf = append(sw.buf, 1)
		for _, v := range e.Counters {
			sw.buf = binary.AppendVarint(sw.buf, v)
		}
	} else {
		sw.buf = append(sw.buf, 0)
	}
	return sw.consumed()
}

// WriteSample appends one sample to the open sample section.
func (sw *StreamWriter) WriteSample(s *Sample) error {
	if err := sw.ready(KindSample); err != nil {
		return err
	}
	sw.buf = binary.AppendUvarint(sw.buf, uint64(s.Time-sw.prev))
	sw.prev = s.Time
	sw.buf = binary.AppendUvarint(sw.buf, uint64(s.Rank))
	for _, v := range s.Counters {
		sw.buf = binary.AppendVarint(sw.buf, v)
	}
	sw.buf = binary.AppendUvarint(sw.buf, uint64(len(s.Stack)))
	for _, f := range s.Stack {
		sw.buf = binary.AppendUvarint(sw.buf, uint64(f))
	}
	return sw.consumed()
}

// WriteComm appends one comm to the open comm section.
func (sw *StreamWriter) WriteComm(c *Comm) error {
	if err := sw.ready(KindComm); err != nil {
		return err
	}
	sw.buf = binary.AppendUvarint(sw.buf, uint64(c.SendTime-sw.prev))
	sw.prev = c.SendTime
	sw.buf = binary.AppendVarint(sw.buf, int64(c.RecvTime-c.SendTime))
	sw.buf = binary.AppendUvarint(sw.buf, uint64(c.Src))
	sw.buf = binary.AppendUvarint(sw.buf, uint64(c.Dst))
	sw.buf = binary.AppendVarint(sw.buf, c.Size)
	sw.buf = binary.AppendVarint(sw.buf, int64(c.Tag))
	return sw.consumed()
}

// WriteRecord appends rec's active variant to the matching section.
func (sw *StreamWriter) WriteRecord(rec *Record) error {
	switch rec.Kind {
	case KindEvent:
		return sw.WriteEvent(&rec.Event)
	case KindSample:
		return sw.WriteSample(&rec.Sample)
	case KindComm:
		return sw.WriteComm(&rec.Comm)
	}
	if sw.err != nil {
		return sw.err
	}
	return sw.fail(fmt.Errorf("trace: unknown record kind %d", rec.Kind))
}

// Close verifies every declared section is complete and flushes the
// underlying writer.
func (sw *StreamWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.next != numKinds || sw.open {
		return sw.fail(fmt.Errorf("trace: Close before all sections were written"))
	}
	if _, err := sw.bw.Write(sw.buf); err != nil {
		return sw.fail(err)
	}
	sw.buf = sw.buf[:0]
	if err := sw.bw.Flush(); err != nil {
		return sw.fail(err)
	}
	return nil
}
