package trace

import (
	"encoding/binary"
	"errors"
	"io"

	"repro/internal/counters"
)

// NextBlock fills blk with the next run of same-kind records, resetting
// it first. In Strict mode records are decoded straight into blk's
// columns — no intermediate Record is built — while Lenient mode routes
// through the salvage loop so both paths drop exactly the same records.
// A block ends at the section boundary or at blk.Cap(), whichever comes
// first, so every block is homogeneous in kind.
//
// NextBlock returns io.EOF only when no rows were produced; a partial
// block at end of stream comes back with a nil error and the next call
// reports io.EOF. On a decode error the rows already in blk are valid.
// Do not interleave Next and NextBlock calls on one reader.
func (sr *StreamReader) NextBlock(blk *ColBlock) error {
	// Empty the block up front so a recycled block never carries stale
	// rows out of an EOF or error return.
	blk.Reset(blk.kind)
	if sr.err != nil {
		return sr.err
	}
	if sr.mode == Lenient {
		return sr.nextBlockLenient(blk)
	}
	for sr.left == 0 {
		if sr.counted {
			sr.kind++
			sr.counted = false
		}
		if sr.kind >= numKinds {
			return sr.fail(io.EOF)
		}
		if err := sr.beginSection(); err != nil {
			return sr.fail(err)
		}
	}
	blk.Reset(sr.kind)
	for sr.left > 0 && blk.Len() < blk.Cap() {
		// A room failure is a caller-side block problem (tampered
		// columns), not stream corruption: report it without poisoning
		// the reader.
		if err := blk.room(sr.kind); err != nil {
			return err
		}
		var err error
		switch sr.kind {
		case KindEvent:
			err = sr.readEventCols(blk)
		case KindSample:
			err = sr.readSampleCols(blk)
		default:
			err = sr.readCommCols(blk)
		}
		if err != nil {
			return sr.fail(err)
		}
		sr.idx++
		sr.left--
	}
	return nil
}

// nextBlockLenient batches the salvage decoder's output: records flow
// through nextLenient (so drop/resync/truncation behavior — and
// therefore DecodeStats — is identical to the row path) and are packed
// into blk until the kind changes or the block fills. The cross-kind
// record is held as pending and opens the next block.
func (sr *StreamReader) nextBlockLenient(blk *ColBlock) error {
	if !sr.hasPending {
		if err := sr.nextLenient(&sr.pending); err != nil {
			return err
		}
		sr.hasPending = true
	}
	blk.Reset(sr.pending.Kind)
	for {
		if sr.pending.Kind != blk.Kind() || blk.Len() >= blk.Cap() {
			return nil // pending record opens the next block
		}
		if err := blk.AppendRecord(&sr.pending); err != nil {
			return err
		}
		sr.hasPending = false
		if err := sr.nextLenient(&sr.pending); err != nil {
			if errors.Is(err, io.EOF) && blk.Len() > 0 {
				return nil // partial block stands; next call reports EOF
			}
			return err
		}
		sr.hasPending = true
	}
}

// readEventCols decodes one event directly into b's columns, mirroring
// readEvent field-for-field (same read order, same error messages, same
// overflow checks) so the two paths accept and reject identical bytes.
func (sr *StreamReader) readEventCols(b *ColBlock) error {
	i := sr.idx
	dt, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "event %d time: %v", i, err)
	}
	rank, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "event %d rank: %v", i, err)
	}
	typ, err := sr.br.ReadByte()
	if err != nil {
		return badf(err, "event %d type: %v", i, err)
	}
	val, err := binary.ReadVarint(sr.br)
	if err != nil {
		return badf(err, "event %d value: %v", i, err)
	}
	flag, err := sr.br.ReadByte()
	if err != nil {
		return badf(err, "event %d counter flag: %v", i, err)
	}
	t, err := sr.advance(dt, "time")
	if err != nil {
		return err
	}
	j := b.n
	b.Times[j] = int64(t)
	b.Ranks[j] = int32(rank)
	b.Types[j] = typ
	b.Values[j] = val
	switch flag {
	case 0:
		b.Flags[j] = 0
		for c := range b.Ctrs {
			b.Ctrs[c][j] = 0
		}
	case 1:
		b.Flags[j] = 1
		for c := 0; c < int(counters.NumCounters); c++ {
			v, err := binary.ReadVarint(sr.br)
			if err != nil {
				return badf(err, "event %d counter %d: %v", i, c, err)
			}
			b.Ctrs[c][j] = v
		}
	default:
		return badf(nil, "event %d has invalid counter flag %d", i, flag)
	}
	b.n = j + 1
	return nil
}

// readSampleCols decodes one sample directly into b's columns; stack
// frames go straight into the block's CSR arena. On a mid-record error
// the arena is rolled back so the rows already in b stay valid.
func (sr *StreamReader) readSampleCols(b *ColBlock) error {
	i := sr.idx
	dt, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "sample %d time: %v", i, err)
	}
	rank, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "sample %d rank: %v", i, err)
	}
	t, err := sr.advance(dt, "time")
	if err != nil {
		return err
	}
	j := b.n
	b.Times[j] = int64(t)
	b.Ranks[j] = int32(rank)
	for c := 0; c < int(counters.NumCounters); c++ {
		v, err := binary.ReadVarint(sr.br)
		if err != nil {
			return badf(err, "sample %d counter %d: %v", i, c, err)
		}
		b.Ctrs[c][j] = v
	}
	depth, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "sample %d stack depth: %v", i, err)
	}
	if depth > 1024 {
		return badf(nil, "sample %d stack depth %d too large", i, depth)
	}
	start := len(b.Frames)
	b.growFrames(int(depth))
	for d := uint64(0); d < depth; d++ {
		f, err := binary.ReadUvarint(sr.br)
		if err != nil {
			b.Frames = b.Frames[:start]
			return badf(err, "sample %d frame %d: %v", i, d, err)
		}
		b.Frames = append(b.Frames, uint32(f))
	}
	b.StackOff[j+1] = int32(len(b.Frames))
	b.n = j + 1
	return nil
}

// readCommCols decodes one comm record directly into b's columns,
// mirroring readComm.
func (sr *StreamReader) readCommCols(b *ColBlock) error {
	i := sr.idx
	dt, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "comm %d send time: %v", i, err)
	}
	lat, err := binary.ReadVarint(sr.br)
	if err != nil {
		return badf(err, "comm %d latency: %v", i, err)
	}
	src, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "comm %d src: %v", i, err)
	}
	dst, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return badf(err, "comm %d dst: %v", i, err)
	}
	size, err := binary.ReadVarint(sr.br)
	if err != nil {
		return badf(err, "comm %d size: %v", i, err)
	}
	tag, err := binary.ReadVarint(sr.br)
	if err != nil {
		return badf(err, "comm %d tag: %v", i, err)
	}
	t, err := sr.advance(dt, "send time")
	if err != nil {
		return err
	}
	j := b.n
	b.Times[j] = int64(t)
	b.Recvs[j] = int64(t + Time(lat))
	b.Ranks[j] = int32(src)
	b.Dsts[j] = int32(dst)
	b.Sizes[j] = size
	b.Tags[j] = int32(tag)
	b.n = j + 1
	return nil
}
