package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// collectRecords drains a Source, copying each record (and its stack,
// which the source may reuse) so the caller can inspect the full stream.
func collectRecords(t *testing.T, src Source) []Record {
	t.Helper()
	var out []Record
	for {
		var rec Record
		err := src.Next(&rec)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rec.Kind == KindSample && rec.Sample.Stack != nil {
			rec.Sample.Stack = append([]uint32(nil), rec.Sample.Stack...)
		}
		out = append(out, rec)
	}
}

// TestStreamReaderMatchesTraceSource is the streaming decoder's core
// contract: the record sequence it yields from an encoded trace is
// identical — same kinds, order, and contents — to iterating the
// in-memory trace through TraceSource.
func TestStreamReaderMatchesTraceSource(t *testing.T) {
	tr := buildSmallTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Len()

	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Meta().App != tr.Meta.App || sr.Meta().Ranks != tr.Meta.Ranks {
		t.Fatalf("stream meta %+v does not match trace", sr.Meta())
	}
	got := collectRecords(t, sr)
	want := collectRecords(t, NewTraceSource(tr))
	if len(got) != len(want) {
		t.Fatalf("stream yielded %d records, trace source %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(&got[i], &want[i]) {
			t.Fatalf("record %d differs:\nstream %+v\ntrace  %+v", i, got[i], want[i])
		}
	}
	if sr.BytesRead() != int64(encoded) {
		t.Fatalf("BytesRead = %d, encoded size %d", sr.BytesRead(), encoded)
	}
	// The terminal state is sticky.
	var rec Record
	if err := sr.Next(&rec); err != io.EOF {
		t.Fatalf("Next after EOF = %v", err)
	}
}

func recordsEqual(a, b *Record) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindEvent:
		return a.Event == b.Event
	case KindSample:
		if a.Sample.Time != b.Sample.Time || a.Sample.Rank != b.Sample.Rank ||
			a.Sample.Counters != b.Sample.Counters || len(a.Sample.Stack) != len(b.Sample.Stack) {
			return false
		}
		for i := range a.Sample.Stack {
			if a.Sample.Stack[i] != b.Sample.Stack[i] {
				return false
			}
		}
		return true
	default:
		return a.Comm == b.Comm
	}
}

// TestStreamWriterByteIdentical pins the StreamWriter's contract: writing
// a trace record-at-a-time produces exactly the bytes Trace.Write does.
func TestStreamWriterByteIdentical(t *testing.T) {
	tr := buildSmallTrace(t)
	var want bytes.Buffer
	if err := tr.Write(&want); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	sw, err := NewStreamWriter(&got, &tr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Begin(KindEvent, len(tr.Events)); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		if err := sw.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Begin(KindSample, len(tr.Samples)); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Samples {
		if err := sw.WriteSample(&tr.Samples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Begin(KindComm, len(tr.Comms)); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Comms {
		if err := sw.WriteComm(&tr.Comms[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("StreamWriter output differs from Trace.Write (%d vs %d bytes)", got.Len(), want.Len())
	}
}

// TestStreamWriterMisuse checks the writer rejects out-of-order and
// over-count usage instead of producing a corrupt stream.
func TestStreamWriterMisuse(t *testing.T) {
	newWriter := func() *StreamWriter {
		sw, err := NewStreamWriter(io.Discard, &Metadata{App: "x", Ranks: 1})
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	if err := newWriter().Begin(KindSample, 0); err == nil {
		t.Error("Begin(sample) before events accepted")
	}
	if err := newWriter().WriteEvent(&Event{}); err == nil {
		t.Error("WriteEvent before Begin accepted")
	}
	sw := newWriter()
	if err := sw.Begin(KindEvent, 1); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvent(&Event{}); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvent(&Event{Time: 1}); err == nil {
		t.Error("extra event beyond declared count accepted")
	}
	sw2 := newWriter()
	if err := sw2.Begin(KindEvent, 1); err != nil {
		t.Fatal(err)
	}
	if err := sw2.Close(); err == nil {
		t.Error("Close with an incomplete section accepted")
	}
}

// corruptCountInput builds an input whose event-section count claims far
// more records than the stream can hold.
func corruptCountInput(t *testing.T, count uint64) []byte {
	t.Helper()
	mj, err := json.Marshal(&Metadata{App: "x", Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]byte{}, magic[:]...)
	raw = binary.AppendUvarint(raw, uint64(len(mj)))
	raw = append(raw, mj...)
	raw = binary.AppendUvarint(raw, count)
	// A few plausible record bytes so decoding would "work" for a while
	// if the count were trusted.
	return append(raw, 0, 0, byte(EvMPI), 2, 0)
}

// TestCorruptCountRejectedBeforeAllocation is the hardening contract: a
// section count exceeding what the remaining input could possibly encode
// fails with ErrBadFormat immediately — ReadFrom must not size a
// multi-GB slice from an attacker-controlled header.
func TestCorruptCountRejectedBeforeAllocation(t *testing.T) {
	raw := corruptCountInput(t, 1<<30) // claims 2^30 events in a ~60-byte input
	_, err := ReadFrom(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("corrupt count decoded successfully")
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("error %v does not wrap ErrBadFormat", err)
	}

	// Counts beyond the absolute cap are rejected even when the input
	// size is unknown (e.g. a pipe).
	raw = corruptCountInput(t, 1<<40)
	_, err = ReadFrom(hideLen{bytes.NewReader(raw)})
	if err == nil || !errors.Is(err, ErrBadFormat) {
		t.Fatalf("oversized count with unknown input size: err = %v", err)
	}
}

// hideLen masks the underlying reader's Len so NewStreamReader cannot
// discover the input size — the pipe case.
type hideLen struct{ r io.Reader }

func (h hideLen) Read(p []byte) (int, error) { return h.r.Read(p) }

// TestPreallocHintBounded checks the collect-path allocation hint is
// clamped by the remaining input even when the declared count is
// plausible for the validator but still inflated.
func TestPreallocHintBounded(t *testing.T) {
	tr := buildSmallTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := sr.Next(&rec); err != nil {
		t.Fatal(err)
	}
	if hint := sr.PreallocHint(KindEvent); hint > buf.Len() {
		t.Fatalf("PreallocHint(event) = %d exceeds total input size %d", hint, buf.Len())
	}
}
