// Package trace defines the trace data model shared by the whole pipeline:
// the simulator produces traces, and burst extraction, clustering and
// folding consume them.
//
// The model mirrors the record kinds an Extrae-instrumented MPI run
// produces: punctual instrumentation events (enter/exit of MPI calls and
// user regions), periodic samples carrying hardware-counter snapshots and
// call stacks, and point-to-point communication records. Times are virtual
// nanoseconds from the start of the run.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/counters"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Microseconds returns the time as a float64 microsecond count, the unit
// most reports use.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Milliseconds returns the time as float64 milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// EventType classifies instrumentation events.
type EventType uint8

const (
	// EvMPI marks entry (Value = MPI operation id) and exit (Value = 0) of
	// an MPI call. These are the events that delimit computation bursts.
	EvMPI EventType = iota
	// EvRegion marks entry (Value = region id) and exit (Value = 0) of an
	// instrumented user region. The simulator emits them only when the
	// region is explicitly instrumented.
	EvRegion
	// EvIteration marks the start of main-loop iteration number Value.
	EvIteration
	// EvOracle carries ground-truth phase identity from the simulator
	// (Value = kernel id at entry, 0 at exit). It is NEVER consumed by the
	// analysis pipeline; tests use it to validate clustering and folding
	// against the truth.
	EvOracle
	numEventTypes
)

var eventTypeNames = [numEventTypes]string{"MPI", "REGION", "ITERATION", "ORACLE"}

// String names the event type.
func (t EventType) String() string {
	if t < numEventTypes {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("EVTYPE_%d", uint8(t))
}

// MPIOp identifies an MPI operation in EvMPI event values. Value 0 is
// reserved to mean "exit".
type MPIOp int64

// MPI operations the simulator models.
const (
	MPINone      MPIOp = 0 // exit marker
	MPISend      MPIOp = 1
	MPIRecv      MPIOp = 2
	MPISendRecv  MPIOp = 3
	MPIBarrier   MPIOp = 4
	MPIAllreduce MPIOp = 5
	MPIBcast     MPIOp = 6
	MPIReduce    MPIOp = 7
	MPIAlltoall  MPIOp = 8
	MPIWaitall   MPIOp = 9
	MPIIsend     MPIOp = 10
	MPIIrecv     MPIOp = 11
	maxMPIOp     MPIOp = MPIIrecv
)

var mpiOpNames = map[MPIOp]string{
	MPINone:      "Outside MPI",
	MPISend:      "MPI_Send",
	MPIRecv:      "MPI_Recv",
	MPISendRecv:  "MPI_Sendrecv",
	MPIBarrier:   "MPI_Barrier",
	MPIAllreduce: "MPI_Allreduce",
	MPIBcast:     "MPI_Bcast",
	MPIReduce:    "MPI_Reduce",
	MPIAlltoall:  "MPI_Alltoall",
	MPIWaitall:   "MPI_Waitall",
	MPIIsend:     "MPI_Isend",
	MPIIrecv:     "MPI_Irecv",
}

// AllMPIOps returns every defined operation except the exit marker.
func AllMPIOps() []MPIOp {
	out := make([]MPIOp, 0, int(maxMPIOp))
	for op := MPISend; op <= maxMPIOp; op++ {
		out = append(out, op)
	}
	return out
}

// String names the MPI operation.
func (op MPIOp) String() string {
	if n, ok := mpiOpNames[op]; ok {
		return n
	}
	return fmt.Sprintf("MPI_Op_%d", int64(op))
}

// Event is a punctual instrumentation record. Probes read the hardware
// counters when they fire (as Extrae's PAPI integration does), so events
// optionally carry a counter snapshot; burst extraction differences the
// snapshots at burst boundaries.
type Event struct {
	Rank        int32
	Time        Time
	Type        EventType
	Value       int64
	HasCounters bool
	Counters    counters.Values
}

// Sample is one sampler interrupt: a hardware-counter snapshot (absolute,
// monotone per rank) plus the captured call stack, innermost frame first.
// Stack frames are region ids resolvable through Metadata.Regions.
type Sample struct {
	Rank     int32
	Time     Time
	Counters counters.Values
	Stack    []uint32
}

// Comm is a point-to-point message record.
type Comm struct {
	Src, Dst           int32
	SendTime, RecvTime Time
	Size               int64
	Tag                int32
}

// Metadata describes the traced run.
type Metadata struct {
	// App is the application name (e.g. "stencil").
	App string
	// Ranks is the number of MPI ranks.
	Ranks int
	// Duration is the virtual end time of the run.
	Duration Time
	// SamplePeriod is the nominal sampler period (0 when sampling was off).
	SamplePeriod Time
	// Seed is the simulator RNG seed, recorded for reproducibility.
	Seed uint64
	// Regions names the user-region / call-stack-frame ids.
	Regions map[uint32]string
	// Params records free-form generator parameters (sizes, iteration
	// counts, noise levels) for provenance.
	Params map[string]string
}

// RegionName resolves a region id to its name, or a placeholder.
func (m *Metadata) RegionName(id uint32) string {
	if n, ok := m.Regions[id]; ok {
		return n
	}
	return fmt.Sprintf("region_%d", id)
}

// Trace is a complete trace: metadata plus record streams. Each stream is
// globally sorted by (Time, Rank); use Build or Sort to establish the
// invariant.
type Trace struct {
	Meta    Metadata
	Events  []Event
	Samples []Sample
	Comms   []Comm
}

// Sort establishes the canonical record order: ascending (Time, Rank) and,
// for coincident events of one rank, preserving insertion order (stable).
func (tr *Trace) Sort() {
	sort.SliceStable(tr.Events, func(i, j int) bool {
		a, b := tr.Events[i], tr.Events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Rank < b.Rank
	})
	sort.SliceStable(tr.Samples, func(i, j int) bool {
		a, b := tr.Samples[i], tr.Samples[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Rank < b.Rank
	})
	sort.SliceStable(tr.Comms, func(i, j int) bool {
		a, b := tr.Comms[i], tr.Comms[j]
		if a.SendTime != b.SendTime {
			return a.SendTime < b.SendTime
		}
		return a.Src < b.Src
	})
}

// EventsOfRank returns the rank's events in time order, allocating a new
// slice. The trace must be sorted.
func (tr *Trace) EventsOfRank(rank int32) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Rank == rank {
			out = append(out, e)
		}
	}
	return out
}

// SamplesOfRank returns the rank's samples in time order, allocating a new
// slice. The trace must be sorted.
func (tr *Trace) SamplesOfRank(rank int32) []Sample {
	var out []Sample
	for _, s := range tr.Samples {
		if s.Rank == rank {
			out = append(out, s)
		}
	}
	return out
}

// Stats summarizes a trace for reports and sanity checks.
type Stats struct {
	Events, Samples, Comms int
	Duration               Time
	SamplesPerRank         float64
}

// Stats computes summary statistics.
func (tr *Trace) Stats() Stats {
	s := Stats{
		Events:   len(tr.Events),
		Samples:  len(tr.Samples),
		Comms:    len(tr.Comms),
		Duration: tr.Meta.Duration,
	}
	if tr.Meta.Ranks > 0 {
		s.SamplesPerRank = float64(len(tr.Samples)) / float64(tr.Meta.Ranks)
	}
	return s
}
