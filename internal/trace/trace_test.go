package trace

import (
	"bytes"
	"math/rand/v2"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/counters"
)

// buildSmallTrace assembles a tiny but fully featured trace used by
// several tests.
func buildSmallTrace(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder("unit", 2)
	b.SetSamplePeriod(1000)
	b.SetSeed(42)
	b.SetParam("iters", "3")
	rMain := b.Region("main")
	rSolve := b.Region("solve")

	b.Event(0, 0, EvIteration, 1)
	b.EventC(0, 10, EvMPI, int64(MPIBarrier), []int64{50, 100, 2, 1, 10})
	b.Event(1, 12, EvMPI, int64(MPIBarrier))
	b.EventC(0, 20, EvMPI, 0, []int64{50, 120, 2, 1, 10})
	b.Event(1, 20, EvMPI, 0)
	b.Sample(0, 500, []int64{100, 200, 5, 1, 50}, []uint32{rSolve, rMain})
	b.Sample(0, 1500, []int64{300, 500, 9, 2, 160}, []uint32{rSolve, rMain})
	b.Sample(1, 700, []int64{90, 180, 3, 1, 40}, nil)
	b.Event(0, 2000, EvMPI, int64(MPISendRecv))
	b.Event(1, 2000, EvMPI, int64(MPISendRecv))
	b.Comm(0, 1, 2001, 2050, 4096, 7)
	b.Comm(1, 0, 2001, 2050, 4096, 7)
	b.Event(0, 2100, EvMPI, 0)
	b.Event(1, 2100, EvMPI, 0)
	return b.Build()
}

func TestBuilderBuildsSortedValidTrace(t *testing.T) {
	tr := buildSmallTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Meta.Duration != 2100 {
		t.Fatalf("Duration = %d, want 2100", tr.Meta.Duration)
	}
	if tr.Meta.App != "unit" || tr.Meta.Ranks != 2 || tr.Meta.Seed != 42 {
		t.Fatalf("metadata mismatch: %+v", tr.Meta)
	}
	if tr.Meta.Params["iters"] != "3" {
		t.Fatalf("params not recorded: %+v", tr.Meta.Params)
	}
	st := tr.Stats()
	if st.Events != 9 || st.Samples != 3 || st.Comms != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.SamplesPerRank != 1.5 {
		t.Fatalf("SamplesPerRank = %v", st.SamplesPerRank)
	}
}

func TestBuilderRegionInterning(t *testing.T) {
	b := NewBuilder("x", 1)
	a := b.Region("foo")
	c := b.Region("bar")
	if a == c {
		t.Fatal("distinct names got same id")
	}
	if b.Region("foo") != a {
		t.Fatal("repeated name got different id")
	}
	if a == 0 || c == 0 {
		t.Fatal("region id 0 is reserved")
	}
	tr := b.Build()
	if tr.Meta.RegionName(a) != "foo" {
		t.Fatalf("RegionName = %q", tr.Meta.RegionName(a))
	}
	if got := tr.Meta.RegionName(9999); got != "region_9999" {
		t.Fatalf("unknown RegionName = %q", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := map[string]func(){
		"zero ranks":      func() { NewBuilder("x", 0) },
		"bad event rank":  func() { NewBuilder("x", 2).Event(2, 0, EvMPI, 1) },
		"neg event rank":  func() { NewBuilder("x", 2).Event(-1, 0, EvMPI, 1) },
		"time regression": func() { b := NewBuilder("x", 1); b.Event(0, 10, EvMPI, 1); b.Event(0, 5, EvMPI, 0) },
		"sample regression": func() {
			b := NewBuilder("x", 1)
			b.Sample(0, 10, []int64{1}, nil)
			b.Sample(0, 5, []int64{2}, nil)
		},
		"counter decrease": func() {
			b := NewBuilder("x", 1)
			b.Sample(0, 10, []int64{5}, nil)
			b.Sample(0, 20, []int64{4}, nil)
		},
		"too many counters": func() {
			NewBuilder("x", 1).Sample(0, 0, make([]int64, int(counters.NumCounters)+1), nil)
		},
		"comm recv before send": func() { NewBuilder("x", 2).Comm(0, 1, 100, 50, 8, 0) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBuilderSampleStackCopied(t *testing.T) {
	b := NewBuilder("x", 1)
	stack := []uint32{1, 2}
	b.Sample(0, 0, []int64{1}, stack)
	stack[0] = 99
	tr := b.Build()
	if tr.Samples[0].Stack[0] != 1 {
		t.Fatal("builder aliased caller's stack slice")
	}
}

func TestRoundTripBinary(t *testing.T) {
	tr := buildSmallTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	assertTracesEqual(t, tr, got)
}

func TestRoundTripFile(t *testing.T) {
	tr := buildSmallTrace(t)
	path := filepath.Join(t.TempDir(), "t.uvt")
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	assertTracesEqual(t, tr, got)
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.uvt")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestWriteFileBadPath(t *testing.T) {
	tr := buildSmallTrace(t)
	if err := tr.WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "t.uvt")); err == nil {
		t.Fatal("expected error for unwritable path")
	}
}

func assertTracesEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if !reflect.DeepEqual(want.Meta, got.Meta) {
		t.Fatalf("metadata mismatch:\nwant %+v\ngot  %+v", want.Meta, got.Meta)
	}
	if !reflect.DeepEqual(want.Events, got.Events) {
		t.Fatalf("events mismatch:\nwant %+v\ngot  %+v", want.Events, got.Events)
	}
	if !reflect.DeepEqual(want.Samples, got.Samples) {
		t.Fatalf("samples mismatch:\nwant %+v\ngot  %+v", want.Samples, got.Samples)
	}
	if !reflect.DeepEqual(want.Comms, got.Comms) {
		t.Fatalf("comms mismatch:\nwant %+v\ngot  %+v", want.Comms, got.Comms)
	}
}

// TestRoundTripRandomized is a property test: arbitrary (but invariant-
// respecting) traces survive a binary round trip bit-exactly.
func TestRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 25; trial++ {
		ranks := 1 + rng.IntN(8)
		b := NewBuilder("rand", ranks)
		b.SetSeed(rng.Uint64())
		now := make([]Time, ranks)
		ctr := make([][5]int64, ranks)
		inMPI := make([]bool, ranks)
		nEv := rng.IntN(200)
		for i := 0; i < nEv; i++ {
			r := int32(rng.IntN(ranks))
			now[r] += Time(rng.IntN(1000))
			switch rng.IntN(3) {
			case 0:
				val := int64(MPIBarrier)
				if inMPI[r] {
					val = 0
				}
				if rng.IntN(2) == 0 {
					for c := range ctr[r] {
						ctr[r][c] += rng.Int64N(100)
					}
					b.EventC(r, now[r], EvMPI, val, ctr[r][:])
				} else {
					b.Event(r, now[r], EvMPI, val)
				}
				inMPI[r] = !inMPI[r]
			case 1:
				for c := range ctr[r] {
					ctr[r][c] += rng.Int64N(1000)
				}
				depth := rng.IntN(4)
				stack := make([]uint32, depth)
				for d := range stack {
					stack[d] = rng.Uint32N(100)
				}
				b.Sample(r, now[r], ctr[r][:], stack)
			case 2:
				dst := int32(rng.IntN(ranks))
				b.Comm(r, dst, now[r], now[r]+Time(rng.IntN(500)), rng.Int64N(1<<20), int32(rng.IntN(100)))
			}
		}
		for r := int32(0); r < int32(ranks); r++ {
			if inMPI[r] {
				now[r]++
				b.Event(r, now[r], EvMPI, 0)
				inMPI[r] = false
			}
		}
		tr := b.Build()
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: built trace invalid: %v", trial, err)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("trial %d: Write: %v", trial, err)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("trial %d: ReadFrom: %v", trial, err)
		}
		assertTracesEqual(t, tr, got)
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: decoded trace invalid: %v", trial, err)
		}
	}
}

// TestTruncatedStream checks every prefix of an encoded trace fails to
// decode cleanly rather than panicking or silently succeeding.
func TestTruncatedStream(t *testing.T) {
	tr := buildSmallTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		_, err := ReadFrom(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(full))
		}
	}
}

func TestBadMagic(t *testing.T) {
	_, err := ReadFrom(bytes.NewReader([]byte("XXXXGARBAGE")))
	if err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestCorruptMetadata(t *testing.T) {
	raw := append([]byte{}, magic[:]...)
	raw = append(raw, 5)                  // metaLen = 5
	raw = append(raw, []byte("notjs")...) // invalid JSON
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected error for corrupt metadata")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	base := buildSmallTrace(t)
	mutations := map[string]func(tr *Trace){
		"rank out of range": func(tr *Trace) { tr.Events[0].Rank = 99 },
		"event after end":   func(tr *Trace) { tr.Events[len(tr.Events)-1].Time = tr.Meta.Duration + 1 },
		"unsorted events": func(tr *Trace) {
			tr.Events[0], tr.Events[len(tr.Events)-1] = tr.Events[len(tr.Events)-1], tr.Events[0]
		},
		"double MPI enter": func(tr *Trace) { tr.Events[2].Value = int64(MPIBarrier); tr.Events[3].Value = int64(MPIBarrier) },
		"comm recv early":  func(tr *Trace) { tr.Comms[0].RecvTime = tr.Comms[0].SendTime - 1 },
		"comm negative sz": func(tr *Trace) { tr.Comms[0].Size = -1 },
		"zero ranks":       func(tr *Trace) { tr.Meta.Ranks = 0 },
		"sample rank":      func(tr *Trace) { tr.Samples[0].Rank = -1 },
	}
	for name, mutate := range mutations {
		var buf bytes.Buffer
		if err := base.Write(&buf); err != nil {
			t.Fatal(err)
		}
		tr, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted trace", name)
		}
	}
}

func TestEventCBuilderChecks(t *testing.T) {
	// Event counters must be monotone per rank across EventC calls.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EventC accepted decreasing counters")
			}
		}()
		b := NewBuilder("x", 1)
		b.EventC(0, 10, EvMPI, 1, []int64{100})
		b.EventC(0, 20, EvMPI, 0, []int64{50})
	}()
	// Event and sample counter streams are tracked independently: a sample
	// earlier in time than the latest event may carry smaller counters.
	b := NewBuilder("x", 1)
	b.EventC(0, 100, EvMPI, 1, []int64{1000})
	b.Sample(0, 50, []int64{400}, nil)
	b.EventC(0, 120, EvMPI, 0, []int64{1000})
	tr := b.Build()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateEventCountersMonotone(t *testing.T) {
	b := NewBuilder("x", 1)
	b.EventC(0, 10, EvMPI, 1, []int64{100, 0, 0, 0, 0})
	b.EventC(0, 20, EvMPI, 0, []int64{200, 0, 0, 0, 0})
	tr := b.Build()
	tr.Events[1].Counters[0] = 10
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted decreasing event counters")
	}
}

func TestValidateCountersMonotone(t *testing.T) {
	b := NewBuilder("x", 1)
	b.Sample(0, 10, []int64{100, 100, 1, 1, 1}, nil)
	b.Sample(0, 20, []int64{200, 200, 2, 2, 2}, nil)
	tr := b.Build()
	// Corrupt after building (builder itself would have panicked).
	tr.Samples[1].Counters[0] = 50
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted decreasing counters")
	}
}

func TestEventsSamplesOfRank(t *testing.T) {
	tr := buildSmallTrace(t)
	ev0 := tr.EventsOfRank(0)
	for _, e := range ev0 {
		if e.Rank != 0 {
			t.Fatalf("EventsOfRank returned rank %d", e.Rank)
		}
	}
	if len(ev0)+len(tr.EventsOfRank(1)) != len(tr.Events) {
		t.Fatal("per-rank events do not partition the stream")
	}
	s1 := tr.SamplesOfRank(1)
	if len(s1) != 1 || s1[0].Rank != 1 {
		t.Fatalf("SamplesOfRank(1) = %+v", s1)
	}
}

func TestTimeUnits(t *testing.T) {
	tt := Time(2_500_000)
	if tt.Microseconds() != 2500 {
		t.Fatalf("Microseconds = %v", tt.Microseconds())
	}
	if tt.Milliseconds() != 2.5 {
		t.Fatalf("Milliseconds = %v", tt.Milliseconds())
	}
}

func TestEventTypeAndMPIOpStrings(t *testing.T) {
	if EvMPI.String() != "MPI" || EvOracle.String() != "ORACLE" {
		t.Fatal("event type names wrong")
	}
	if EventType(99).String() != "EVTYPE_99" {
		t.Fatal("unknown event type name wrong")
	}
	if MPIBarrier.String() != "MPI_Barrier" {
		t.Fatal("MPI op name wrong")
	}
	if MPIOp(42).String() != "MPI_Op_42" {
		t.Fatal("unknown MPI op name wrong")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	b := NewBuilder("empty", 1)
	tr := b.Build()
	if err := tr.Validate(); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 0 || len(got.Samples) != 0 || len(got.Comms) != 0 {
		t.Fatal("empty trace decoded non-empty")
	}
}
