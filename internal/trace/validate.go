package trace

import (
	"errors"
	"fmt"

	"repro/internal/counters"
)

// ErrInvalid is wrapped by all validation failures.
var ErrInvalid = errors.New("trace: invalid trace")

// Validate checks the metadata-level invariants — the subset of Trace
// validation a streaming consumer can apply before seeing any record.
func (m *Metadata) Validate() error {
	if m.Ranks < 1 {
		return fmt.Errorf("%w: metadata rank count %d", ErrInvalid, m.Ranks)
	}
	return nil
}

// Validate checks structural invariants of a trace:
//
//   - metadata rank count covers every record's rank
//   - records are sorted by (Time, Rank)
//   - no record is later than the recorded duration
//   - per-rank counters in samples are monotone non-decreasing
//   - per-rank MPI enter/exit events alternate and end balanced
//   - comm records have RecvTime >= SendTime
//
// It returns the first violation found, or nil.
func (tr *Trace) Validate() error {
	ranks := tr.Meta.Ranks
	if err := tr.Meta.Validate(); err != nil {
		return err
	}

	checkRank := func(kind string, i int, rank int32) error {
		if rank < 0 || int(rank) >= ranks {
			return fmt.Errorf("%w: %s %d has rank %d outside [0,%d)", ErrInvalid, kind, i, rank, ranks)
		}
		return nil
	}

	inMPI := make([]bool, ranks)
	prevEvCtr := make([]counters.Values, ranks)
	seenEvCtr := make([]bool, ranks)
	var prevT Time
	var prevR int32 = -1
	for i, e := range tr.Events {
		if err := checkRank("event", i, e.Rank); err != nil {
			return err
		}
		if e.Time > tr.Meta.Duration {
			return fmt.Errorf("%w: event %d at %d after duration %d", ErrInvalid, i, e.Time, tr.Meta.Duration)
		}
		if i > 0 && (e.Time < prevT || (e.Time == prevT && e.Rank < prevR)) {
			return fmt.Errorf("%w: events not sorted at index %d", ErrInvalid, i)
		}
		prevT, prevR = e.Time, e.Rank
		if e.HasCounters {
			if seenEvCtr[e.Rank] {
				for c := range e.Counters {
					if e.Counters[c] < prevEvCtr[e.Rank][c] {
						return fmt.Errorf("%w: rank %d counter %s decreased at event %d (%d -> %d)",
							ErrInvalid, e.Rank, counters.Counter(c), i, prevEvCtr[e.Rank][c], e.Counters[c])
					}
				}
			}
			prevEvCtr[e.Rank] = e.Counters
			seenEvCtr[e.Rank] = true
		}
		if e.Type == EvMPI {
			entering := e.Value != 0
			if entering == inMPI[e.Rank] {
				if entering {
					return fmt.Errorf("%w: rank %d enters MPI at %d while already inside", ErrInvalid, e.Rank, e.Time)
				}
				return fmt.Errorf("%w: rank %d exits MPI at %d while outside", ErrInvalid, e.Rank, e.Time)
			}
			inMPI[e.Rank] = entering
		}
	}
	for r, in := range inMPI {
		if in {
			return fmt.Errorf("%w: rank %d trace ends inside an MPI call", ErrInvalid, r)
		}
	}

	prevCtr := make([]counters.Values, ranks)
	seen := make([]bool, ranks)
	prevT, prevR = 0, -1
	for i, s := range tr.Samples {
		if err := checkRank("sample", i, s.Rank); err != nil {
			return err
		}
		if s.Time > tr.Meta.Duration {
			return fmt.Errorf("%w: sample %d at %d after duration %d", ErrInvalid, i, s.Time, tr.Meta.Duration)
		}
		if i > 0 && (s.Time < prevT || (s.Time == prevT && s.Rank < prevR)) {
			return fmt.Errorf("%w: samples not sorted at index %d", ErrInvalid, i)
		}
		prevT, prevR = s.Time, s.Rank
		if seen[s.Rank] {
			for c := range s.Counters {
				if s.Counters[c] < prevCtr[s.Rank][c] {
					return fmt.Errorf("%w: rank %d counter %s decreased at sample %d (%d -> %d)",
						ErrInvalid, s.Rank, counters.Counter(c), i, prevCtr[s.Rank][c], s.Counters[c])
				}
			}
		}
		prevCtr[s.Rank] = s.Counters
		seen[s.Rank] = true
	}

	for i, c := range tr.Comms {
		if err := checkRank("comm(src)", i, c.Src); err != nil {
			return err
		}
		if err := checkRank("comm(dst)", i, c.Dst); err != nil {
			return err
		}
		if c.RecvTime < c.SendTime {
			return fmt.Errorf("%w: comm %d received at %d before sent at %d", ErrInvalid, i, c.RecvTime, c.SendTime)
		}
		if c.RecvTime > tr.Meta.Duration {
			return fmt.Errorf("%w: comm %d recv at %d after duration %d", ErrInvalid, i, c.RecvTime, tr.Meta.Duration)
		}
		if c.Size < 0 {
			return fmt.Errorf("%w: comm %d has negative size %d", ErrInvalid, i, c.Size)
		}
	}
	return nil
}
